"""The catalog HTTP server: one threaded process, many grid users.

A ``ThreadingHTTPServer`` front-end over one shared multi-user
:class:`~repro.grid.service.MyLeadService`.  Every request-handling
thread runs the full in-process stack — the service's RWLock-guarded
bookkeeping and the store's pooled sqlite readers were built for
exactly this — so the server adds no query semantics of its own, only
transport, identity, and protection:

* **Sessions** (:mod:`.auth`): ``POST /v1/sessions`` turns a user name
  into a bearer token; every catalog endpoint requires one and is
  scoped to the session's user.
* **Rate limiting** (:mod:`.ratelimit`): a per-user token bucket sheds
  load with ``429`` before the request touches the catalog.
* **Streaming search**: ``POST /v1/search`` pages through the match
  set (``offset``/``limit``) and writes each object's XML response as
  its own HTTP/1.1 chunk — the set-wise response builder emits
  per-object, so the body is byte-identical to the in-process
  ``search()`` slice while never materializing more than one page.
* **Observability**: request counts/latency land in the service
  catalog's metrics registry (``server_*`` series, exposed at
  ``GET /v1/metrics``); requests slower than the configured threshold
  emit ``slow_request`` events to the catalog's event log.

Endpoints (JSON bodies unless noted)::

    GET    /v1/health                       liveness + catalog shape
    GET    /v1/metrics                      Prometheus exposition
    POST   /v1/users        {user}          register a service user
    POST   /v1/sessions     {user}          open a session -> {token}
    DELETE /v1/sessions                     close the presented session
    GET    /v1/experiments                  the session user's experiments
    POST   /v1/experiments  {name}          create an experiment
    POST   /v1/files        {experiment_id, document, name?, public?}
    POST   /v1/publish      {object_id}
    POST   /v1/unpublish    {object_id}
    POST   /v1/derivations  {derived_id, source_id}
    POST   /v1/query        {query}         -> {ids, total}
    POST   /v1/fetch        {ids}           -> {documents}
    POST   /v1/search       {query, offset?, limit?}   chunked XML
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from ..errors import CatalogError
from ..grid.service import MyLeadService
from ..obs import render_prometheus
from .auth import SessionManager
from .protocol import query_from_payload
from .ratelimit import RateLimiter

__all__ = ["CatalogServer", "ServerConfig"]

#: Cap on accepted request bodies; a metadata document is kilobytes.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServerConfig:
    """Knobs for one :class:`CatalogServer`."""

    __slots__ = ("host", "port", "rate_limit", "burst", "session_ttl",
                 "slow_request_threshold", "default_page_limit")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        session_ttl: Optional[float] = None,
        slow_request_threshold: Optional[float] = None,
        default_page_limit: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.rate_limit = rate_limit
        self.burst = burst
        self.session_ttl = session_ttl
        self.slow_request_threshold = slow_request_threshold
        self.default_page_limit = default_page_limit


def _status_for(exc: CatalogError) -> int:
    """Map a service-layer rejection to an HTTP status: ownership and
    visibility refusals are 403, unknown names 404, duplicates 409,
    anything else a plain 400 — never a 5xx."""
    message = str(exc)
    if "not visible" in message or "belongs to" in message:
        return 403
    if message.startswith(("no user", "no object", "no experiment")):
        return 404
    if "already exists" in message:
        return 409
    return 400


class _Route:
    __slots__ = ("endpoint", "handler", "auth", "stream")

    def __init__(self, endpoint: str, handler: str,
                 auth: bool = True, stream: bool = False) -> None:
        self.endpoint = endpoint
        self.handler = handler
        self.auth = auth
        self.stream = stream


_ROUTES: Dict[Tuple[str, str], _Route] = {
    ("GET", "/v1/health"): _Route("health", "handle_health", auth=False),
    ("GET", "/v1/metrics"): _Route("metrics", "handle_metrics", auth=False),
    ("POST", "/v1/users"): _Route("users", "handle_create_user", auth=False),
    ("POST", "/v1/sessions"): _Route(
        "sessions", "handle_open_session", auth=False
    ),
    ("DELETE", "/v1/sessions"): _Route("sessions", "handle_close_session"),
    ("GET", "/v1/experiments"): _Route(
        "experiments", "handle_list_experiments"
    ),
    ("POST", "/v1/experiments"): _Route(
        "experiments", "handle_create_experiment"
    ),
    ("POST", "/v1/files"): _Route("files", "handle_add_file"),
    ("POST", "/v1/publish"): _Route("publish", "handle_publish"),
    ("POST", "/v1/unpublish"): _Route("unpublish", "handle_unpublish"),
    ("POST", "/v1/derivations"): _Route(
        "derivations", "handle_record_derivation"
    ),
    ("POST", "/v1/query"): _Route("query", "handle_query"),
    ("POST", "/v1/fetch"): _Route("fetch", "handle_fetch"),
    ("POST", "/v1/search"): _Route("search", "handle_search", stream=True),
}


class _StreamedSearch:
    """A paginated search result the handler writes as chunks."""

    __slots__ = ("total", "ids", "documents", "offset")

    def __init__(self, total: int, ids, documents, offset: int) -> None:
        self.total = total
        self.ids = ids
        self.documents = documents
        self.offset = offset


class CatalogServer:
    """The threaded HTTP front-end over one multi-user service."""

    def __init__(self, service: MyLeadService,
                 config: Optional[ServerConfig] = None) -> None:
        self.service = service
        self.config = config if config is not None else ServerConfig()
        registry = service.catalog.metrics
        self._requests = registry.counter(
            "server_requests_total",
            "HTTP requests served, by endpoint and status",
            labels=("endpoint", "status"),
        )
        self._latency = registry.histogram(
            "server_request_seconds",
            "HTTP request wall time by endpoint",
            labels=("endpoint",),
        )
        self._rate_limited = registry.counter(
            "server_rate_limited_total",
            "requests rejected by the per-user rate limiter",
        )
        self._auth_failures = registry.counter(
            "server_auth_failures_total",
            "requests rejected for a missing or invalid session token",
        )
        self._sessions_gauge = registry.gauge(
            "server_sessions", "session tokens currently active"
        )
        self._streamed = registry.counter(
            "server_streamed_objects_total",
            "XML objects written through streamed search responses",
        )
        self.sessions = SessionManager(
            ttl=self.config.session_ttl,
            on_change=self._sessions_gauge.set,
        )
        self.limiter = RateLimiter(self.config.rate_limit, self.config.burst)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _CatalogRequestHandler
        )
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def start(self) -> "CatalogServer":
        """Serve on a background thread (tests, embedding)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def close(self) -> None:
        self.shutdown()
        self._httpd.server_close()

    def __enter__(self) -> "CatalogServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request accounting (called by the handler)
    # ------------------------------------------------------------------
    def observe(self, endpoint: str, status: int, seconds: float,
                user: Optional[str]) -> None:
        self._requests.labels(endpoint=endpoint, status=str(status)).inc()
        self._latency.labels(endpoint=endpoint).observe(seconds)
        threshold = self.config.slow_request_threshold
        events = self.service.catalog.events
        if threshold is not None and events is not None and seconds > threshold:
            events.emit(
                "slow_request",
                endpoint=endpoint,
                user=user or "",
                status=status,
                seconds=seconds,
                threshold=threshold,
            )

    def count_auth_failure(self) -> None:
        self._auth_failures.inc()

    def count_rate_limited(self) -> None:
        self._rate_limited.inc()

    def count_streamed(self, objects: int) -> None:
        if objects:
            self._streamed.inc(objects)

    # ------------------------------------------------------------------
    # Endpoint handlers: (user, payload, query_params) -> (status, body)
    # ------------------------------------------------------------------
    def handle_health(self, user, payload, params):
        return 200, {
            "status": "ok",
            "objects": len(self.service.catalog),
            "users": len(self.service.users()),
            "sessions": self.sessions.active(),
        }

    def handle_metrics(self, user, payload, params):
        return 200, render_prometheus(self.service.catalog.metrics)

    def handle_create_user(self, user, payload, params):
        name = _required_str(payload, "user")
        self.service.create_user(name)
        return 201, {"user": name}

    def handle_open_session(self, user, payload, params):
        name = _required_str(payload, "user")
        if not self.service.has_user(name):
            raise CatalogError(f"no user {name!r}")
        token = self.sessions.open(name)
        return 201, {"token": token, "user": name}

    def handle_close_session(self, user, payload, params, token=None):
        closed = self.sessions.close(token) if token else False
        return 200, {"closed": closed}

    def handle_list_experiments(self, user, payload, params):
        experiments = self.service.experiments_of(user)
        return 200, {
            "experiments": [
                {
                    "experiment_id": exp.experiment_id,
                    "name": exp.name,
                    "object_id": exp.object_id,
                    "files": len(exp.file_ids),
                }
                for exp in experiments
            ]
        }

    def handle_create_experiment(self, user, payload, params):
        name = _required_str(payload, "name")
        experiment = self.service.create_experiment(user, name)
        return 201, {
            "experiment_id": experiment.experiment_id,
            "object_id": experiment.object_id,
            "name": experiment.name,
        }

    def handle_add_file(self, user, payload, params):
        experiment = self.service.experiment(
            _required_int(payload, "experiment_id")
        )
        document = _required_str(payload, "document")
        receipt = self.service.add_file(
            user,
            experiment,
            document,
            name=str(payload.get("name", "")),
            public=bool(payload.get("public", False)),
        )
        return 201, {
            "object_id": receipt.object_id,
            "clob_count": receipt.clob_count,
            "element_count": receipt.element_count,
            "warnings": list(receipt.warnings),
        }

    def handle_publish(self, user, payload, params):
        object_id = _required_int(payload, "object_id")
        self.service.publish(user, object_id)
        return 200, {"published": object_id}

    def handle_unpublish(self, user, payload, params):
        object_id = _required_int(payload, "object_id")
        self.service.unpublish(user, object_id)
        return 200, {"unpublished": object_id}

    def handle_record_derivation(self, user, payload, params):
        derived = _required_int(payload, "derived_id")
        source = _required_int(payload, "source_id")
        self.service.record_derivation(user, derived, source)
        return 200, {"derived_id": derived, "source_id": source}

    def handle_query(self, user, payload, params):
        query = query_from_payload(payload.get("query"))
        ids = self.service.query(user, query)
        return 200, {"ids": ids, "total": len(ids)}

    def handle_fetch(self, user, payload, params):
        ids = payload.get("ids")
        if not isinstance(ids, list) or not all(
            isinstance(i, int) for i in ids
        ):
            raise CatalogError("'ids' must be a list of integers")
        documents = self.service.fetch(user, ids)
        return 200, {"documents": {str(i): documents[i] for i in ids}}

    def handle_search(self, user, payload, params):
        query = query_from_payload(payload.get("query"))
        offset = payload.get("offset", 0)
        limit = payload.get("limit", self.config.default_page_limit)
        if not isinstance(offset, int):
            raise CatalogError("'offset' must be an integer")
        if limit is not None and not isinstance(limit, int):
            raise CatalogError("'limit' must be an integer or null")
        total, ids, documents = self.service.search_slice(
            user, query, offset, limit
        )
        return 200, _StreamedSearch(total, ids, documents, offset)


def _required_str(payload: Dict[str, Any], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise CatalogError(f"request needs a non-empty string {key!r}")
    return value


def _required_int(payload: Dict[str, Any], key: str) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise CatalogError(f"request needs an integer {key!r}")
    return value


class _CatalogRequestHandler(BaseHTTPRequestHandler):
    """Per-request plumbing: routing, auth, rate limit, accounting.

    HTTP/1.1 with keep-alive — every non-chunked response carries an
    exact ``Content-Length``; streamed search uses chunked transfer
    (one chunk per XML object)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-catalog/1"
    sys_version = ""
    # Headers and body go out in separate send() calls; without
    # TCP_NODELAY that pattern hits the Nagle/delayed-ACK stall
    # (~40 ms per response on loopback).
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request accounting goes through metrics, not stderr

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_DELETE(self) -> None:
        self._handle("DELETE")

    # ------------------------------------------------------------------
    @property
    def app(self) -> CatalogServer:
        return self.server.app  # type: ignore[attr-defined]

    def _handle(self, method: str) -> None:
        app = self.app
        parsed = urlsplit(self.path)
        route = _ROUTES.get((method, parsed.path))
        if route is None:
            self._drain_body()
            self._finish("unknown", 404,
                         {"error": f"no route {method} {parsed.path}"},
                         time.monotonic(), None)
            return
        start = time.monotonic()
        user: Optional[str] = None
        token = self._bearer_token()
        try:
            # Drain the body unconditionally: a rejected request must
            # not leave its bytes in the socket, or the next keep-alive
            # request on this connection parses them as a request line.
            payload = self._read_json_body()
            if route.auth:
                user = app.sessions.resolve(token)
                if user is None:
                    app.count_auth_failure()
                    self._finish(route.endpoint, 401,
                                 {"error": "missing or invalid session token"},
                                 start, None)
                    return
                if not app.limiter.allow(user):
                    app.count_rate_limited()
                    self._finish(route.endpoint, 429,
                                 {"error": "rate limit exceeded"},
                                 start, user)
                    return
            handler = getattr(app, route.handler)
            if route.handler == "handle_close_session":
                status, body = handler(user, payload, parsed.query,
                                       token=token)
            else:
                status, body = handler(user, payload, parsed.query)
        except CatalogError as exc:
            self._finish(route.endpoint, _status_for(exc),
                         {"error": str(exc)}, start, user)
            return
        except Exception as exc:  # noqa: BLE001 - the 5xx boundary
            self._finish(route.endpoint, 500,
                         {"error": f"internal error: {type(exc).__name__}"},
                         start, user)
            return
        if isinstance(body, _StreamedSearch):
            self._finish_stream(route.endpoint, body, start, user)
        else:
            self._finish(route.endpoint, status, body, start, user)

    # ------------------------------------------------------------------
    def _bearer_token(self) -> Optional[str]:
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer "):
            return header[len("Bearer "):].strip()
        return None

    def _drain_body(self) -> None:
        """Consume an unwanted request body so keep-alive stays in sync."""
        length = int(self.headers.get("Content-Length") or 0)
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # Too big to drain: drop the connection after responding
            # instead of leaving unread bytes on a keep-alive socket.
            self.close_connection = True
            raise CatalogError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap"
            )
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError:
            raise CatalogError("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise CatalogError("request body must be a JSON object")
        return payload

    def _finish(self, endpoint: str, status: int, body, start: float,
                user: Optional[str]) -> None:
        if isinstance(body, str):
            data = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = (json.dumps(body) + "\n").encode("utf-8")
            content_type = "application/json"
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage
        self.app.observe(endpoint, status, time.monotonic() - start, user)

    def _finish_stream(self, endpoint: str, result: _StreamedSearch,
                       start: float, user: Optional[str]) -> None:
        """One chunk per XML object; the concatenated body is
        byte-identical to the in-process ``search()`` slice."""
        app = self.app
        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/xml; charset=utf-8")
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("X-Total-Matches", str(result.total))
            self.send_header("X-Offset", str(result.offset))
            self.send_header(
                "X-Object-Ids", ",".join(str(i) for i in result.ids)
            )
            self.end_headers()
            for document in result.documents:
                data = document.encode("utf-8")
                if not data:
                    continue
                self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
                # Counted before the terminator goes out: the metric
                # must already be visible when the client observes the
                # end of the stream.
                app.count_streamed(1)
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # a half-written stream cannot be repaired over HTTP
        app.observe(endpoint, 200, time.monotonic() - start, user)
