"""Session-token authentication for the catalog server.

A session binds an opaque token to a service user name.  Tokens are
bearer credentials: every authenticated request carries one in the
``Authorization`` header and is scoped to the session's user — the
server never trusts a client-supplied user name directly (AMGA's
per-connection identity, translated to HTTP).

Sessions optionally expire after ``ttl`` seconds of inactivity; the
clock is injectable so expiry is testable without sleeping.
"""

from __future__ import annotations

import secrets
import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["Session", "SessionManager"]


class Session:
    __slots__ = ("token", "user", "last_used")

    def __init__(self, token: str, user: str, last_used: float) -> None:
        self.token = token
        self.user = user
        self.last_used = last_used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(user={self.user!r})"


class SessionManager:
    """Thread-safe token → user bookkeeping with idle expiry.

    ``on_change`` (when given) is called with the active-session count
    after every open/close/expiry — the server points it at its
    ``server_sessions`` gauge.
    """

    def __init__(
        self,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        on_change: Optional[Callable[[int], None]] = None,
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError("session ttl must be positive")
        self.ttl = ttl
        self._clock = clock
        self._on_change = on_change
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}

    def open(self, user: str) -> str:
        """Open a session for ``user`` and return its bearer token."""
        token = secrets.token_hex(16)
        with self._lock:
            self._sessions[token] = Session(token, user, self._clock())
            count = len(self._sessions)
        self._notify(count)
        return token

    def resolve(self, token: Optional[str]) -> Optional[str]:
        """The user a live token belongs to; ``None`` for unknown or
        expired tokens.  Resolving refreshes the idle timer."""
        if not token:
            return None
        now = self._clock()
        expired = False
        with self._lock:
            session = self._sessions.get(token)
            if session is None:
                return None
            if self.ttl is not None and now - session.last_used > self.ttl:
                del self._sessions[token]
                count = len(self._sessions)
                expired = True
            else:
                session.last_used = now
        if expired:
            self._notify(count)
            return None
        return session.user

    def close(self, token: str) -> bool:
        """Invalidate a token; True if it was live."""
        with self._lock:
            session = self._sessions.pop(token, None)
            count = len(self._sessions)
        if session is not None:
            self._notify(count)
        return session is not None

    def active(self) -> int:
        """Live session count (expired-but-unresolved tokens included
        until something touches them)."""
        with self._lock:
            return len(self._sessions)

    def _notify(self, count: int) -> None:
        if self._on_change is not None:
            self._on_change(count)
