"""A minimal stdlib client for the catalog server.

One :class:`CatalogClient` wraps one persistent ``http.client``
connection (HTTP/1.1 keep-alive) — it is deliberately **not**
thread-safe; give each client thread its own instance, as the E16 load
harness and the CI smoke test do.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.query import ObjectQuery
from .protocol import query_to_payload

__all__ = ["CatalogClient", "SearchPage"]


class SearchPage:
    """One streamed search response, reassembled client-side."""

    __slots__ = ("total", "ids", "body", "offset")

    def __init__(self, total: int, ids: List[int], body: str,
                 offset: int) -> None:
        self.total = total
        self.ids = ids
        self.body = body
        self.offset = offset


class CatalogClient:
    def __init__(self, host: str, port: int,
                 token: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.token = token
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CatalogClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self, method: str, path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One round trip; returns (status, headers, body bytes)."""
        headers = {}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
        except (http.client.NotConnected, http.client.CannotSendRequest,
                BrokenPipeError, ConnectionError):
            # The server (or an idle timeout) dropped the keep-alive
            # connection; reconnect once and replay.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), data

    def json(self, method: str, path: str,
             payload: Optional[Dict[str, Any]] = None,
             ) -> Tuple[int, Dict[str, Any]]:
        status, _headers, data = self.request(method, path, payload)
        return status, json.loads(data) if data else {}

    # ------------------------------------------------------------------
    # Convenience endpoints
    # ------------------------------------------------------------------
    def create_user(self, user: str) -> Tuple[int, Dict[str, Any]]:
        return self.json("POST", "/v1/users", {"user": user})

    def open_session(self, user: str) -> str:
        """Open a session and adopt its token for later requests."""
        status, body = self.json("POST", "/v1/sessions", {"user": user})
        if status != 201:
            raise RuntimeError(f"session open failed ({status}): {body}")
        self.token = body["token"]
        return self.token

    def close_session(self) -> Tuple[int, Dict[str, Any]]:
        status, body = self.json("DELETE", "/v1/sessions")
        self.token = None
        return status, body

    def create_experiment(self, name: str) -> Tuple[int, Dict[str, Any]]:
        return self.json("POST", "/v1/experiments", {"name": name})

    def add_file(self, experiment_id: int, document: str,
                 name: str = "", public: bool = False,
                 ) -> Tuple[int, Dict[str, Any]]:
        return self.json("POST", "/v1/files", {
            "experiment_id": experiment_id,
            "document": document,
            "name": name,
            "public": public,
        })

    def publish(self, object_id: int) -> Tuple[int, Dict[str, Any]]:
        return self.json("POST", "/v1/publish", {"object_id": object_id})

    def unpublish(self, object_id: int) -> Tuple[int, Dict[str, Any]]:
        return self.json("POST", "/v1/unpublish", {"object_id": object_id})

    def query(self, query: ObjectQuery) -> Tuple[int, Dict[str, Any]]:
        return self.json("POST", "/v1/query",
                         {"query": query_to_payload(query)})

    def fetch(self, ids: Sequence[int]) -> Tuple[int, Dict[str, Any]]:
        return self.json("POST", "/v1/fetch", {"ids": list(ids)})

    def search(self, query: ObjectQuery, offset: int = 0,
               limit: Optional[int] = None) -> SearchPage:
        """One page of streamed search results, reassembled."""
        payload: Dict[str, Any] = {
            "query": query_to_payload(query), "offset": offset,
        }
        if limit is not None:
            payload["limit"] = limit
        status, headers, data = self.request("POST", "/v1/search", payload)
        if status != 200:
            body = json.loads(data) if data else {}
            raise RuntimeError(f"search failed ({status}): {body}")
        ids = [
            int(i) for i in headers.get("X-Object-Ids", "").split(",") if i
        ]
        return SearchPage(
            int(headers.get("X-Total-Matches", "0")),
            ids,
            data.decode("utf-8"),
            int(headers.get("X-Offset", "0")),
        )

    def health(self) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", "/v1/health")

    def metrics_text(self) -> str:
        status, _headers, data = self.request("GET", "/v1/metrics")
        if status != 200:
            raise RuntimeError(f"metrics failed ({status})")
        return data.decode("utf-8")
