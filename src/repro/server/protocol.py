"""The JSON wire format for catalog queries.

Clients POST a criteria tree as JSON; the server rebuilds the same
:class:`~repro.core.query.ObjectQuery` the in-process API takes, so the
whole planner/executor stack behind the HTTP front-end is unchanged.

Wire shape (``source`` defaults to ``""``; an element without a
``source`` inherits its attribute's)::

    {"attrs": [
        {"name": "grid", "source": "ARPS",
         "elems": [{"name": "dx", "op": "=", "value": 1000.0}],
         "subs":  [{"name": "stretching", "elems": [...]}]}
    ]}

Operators use the CLI's spellings (``=``/``==``, ``!=``, ``<``, ``<=``,
``>``, ``>=``, ``contains``) plus ``in`` for set membership.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.query import AttributeCriteria, ObjectQuery, Op
from ..errors import CatalogError

__all__ = [
    "OPS",
    "criteria_to_payload",
    "query_from_payload",
    "query_to_payload",
]

OPS: Dict[str, Op] = {
    "=": Op.EQ, "==": Op.EQ, "!=": Op.NE, "<": Op.LT, "<=": Op.LE,
    ">": Op.GT, ">=": Op.GE, "contains": Op.CONTAINS, "in": Op.IN_SET,
}


def _bad(message: str) -> CatalogError:
    return CatalogError(f"bad query payload: {message}")


def _criteria_from(payload: Any, depth: int = 0) -> AttributeCriteria:
    if not isinstance(payload, dict):
        raise _bad(f"attribute criteria must be an object, got {type(payload).__name__}")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise _bad("attribute criteria needs a non-empty 'name'")
    source = payload.get("source", "")
    if not isinstance(source, str):
        raise _bad(f"attribute source must be a string, got {source!r}")
    criteria = AttributeCriteria(name, source)
    elems = payload.get("elems", [])
    if not isinstance(elems, list):
        raise _bad("'elems' must be a list")
    for elem in elems:
        if not isinstance(elem, dict):
            raise _bad("element criterion must be an object")
        elem_name = elem.get("name")
        if not isinstance(elem_name, str) or not elem_name:
            raise _bad("element criterion needs a non-empty 'name'")
        op_token = elem.get("op", "=")
        op = OPS.get(op_token)
        if op is None:
            raise _bad(f"unknown operator {op_token!r}; one of {sorted(OPS)}")
        value = elem.get("value")
        if op is Op.IN_SET:
            if not isinstance(value, list):
                raise _bad("'in' operator needs a list value")
            value = set(value)
        criteria.add_element(elem_name, elem.get("source"), value, op)
    subs = payload.get("subs", [])
    if not isinstance(subs, list):
        raise _bad("'subs' must be a list")
    if subs and depth > 0:
        raise _bad("sub-attribute criteria cannot nest further")
    for sub in subs:
        criteria.add_attribute(_criteria_from(sub, depth + 1))
    return criteria


def query_from_payload(payload: Any) -> ObjectQuery:
    """Rebuild an :class:`ObjectQuery` from its wire representation."""
    if not isinstance(payload, dict):
        raise _bad(f"query must be an object, got {type(payload).__name__}")
    attrs = payload.get("attrs")
    if not isinstance(attrs, list) or not attrs:
        raise _bad("query needs a non-empty 'attrs' list")
    query = ObjectQuery()
    for attr in attrs:
        query.add_attribute(_criteria_from(attr))
    return query


def criteria_to_payload(criteria: AttributeCriteria) -> Dict[str, Any]:
    """The wire representation of one criteria subtree (client half)."""
    out: Dict[str, Any] = {"name": criteria.name, "source": criteria.source}
    if criteria.elements:
        out["elems"] = [
            {
                "name": elem.name,
                "source": elem.source,
                "op": elem.op.value,
                "value": sorted(elem.value) if elem.op is Op.IN_SET else elem.value,
            }
            for elem in criteria.elements
        ]
    if criteria.sub_attributes:
        out["subs"] = [criteria_to_payload(sub) for sub in criteria.sub_attributes]
    return out


def query_to_payload(query: ObjectQuery) -> Dict[str, List[Dict[str, Any]]]:
    """The wire representation of a whole query (client half)."""
    return {"attrs": [criteria_to_payload(attr) for attr in query.attributes]}
