"""Per-user token-bucket rate limiting for the catalog server.

Each user gets a bucket holding up to ``burst`` tokens that refills at
``rate`` tokens/second; a request spends one token or is rejected.
``rate=None`` disables limiting entirely (the default for in-process
and benchmark use).  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["RateLimiter"]


class RateLimiter:
    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if burst is not None and burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate else 1.0)
        self._clock = clock
        self._lock = threading.Lock()
        # user -> (tokens, last refill stamp)
        self._buckets: Dict[str, list] = {}

    def allow(self, user: str) -> bool:
        """Spend one token from ``user``'s bucket; False when empty."""
        if self.rate is None:
            return True
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(user)
            if bucket is None:
                bucket = [self.burst, now]
                self._buckets[user] = bucket
            tokens, stamp = bucket
            tokens = min(self.burst, tokens + (now - stamp) * self.rate)
            if tokens < 1.0:
                bucket[0] = tokens
                bucket[1] = now
                return False
            bucket[0] = tokens - 1.0
            bucket[1] = now
            return True

    def reset(self, user: Optional[str] = None) -> None:
        """Forget one user's bucket (or all of them)."""
        with self._lock:
            if user is None:
                self._buckets.clear()
            else:
                self._buckets.pop(user, None)
