"""Sharded catalog federation: N hybrid catalogs behind one API.

Partition a catalog across N sqlite WAL databases (hash-by-id or
by-owner routing), scatter the unchanged logical IR to every shard,
and gather with an order-preserving k-way merge — proven equivalent
to a single catalog by the sharding parity suite
(``tests/integration/test_shard_parity_properties.py``).
"""

from .catalog import ShardedCatalog, ShardedExplanation, check_sharded_catalog
from .router import HashRouter, ShardRouter, UserRouter, router_for
from .topology import (
    Topology,
    read_topology,
    shard_db_paths,
    topology_sidecar,
    write_topology,
)

__all__ = [
    "ShardedCatalog",
    "ShardedExplanation",
    "check_sharded_catalog",
    "ShardRouter",
    "HashRouter",
    "UserRouter",
    "router_for",
    "Topology",
    "shard_db_paths",
    "topology_sidecar",
    "read_topology",
    "write_topology",
]
