"""The sharded catalog facade: N hybrid catalogs behind one API.

:class:`ShardedCatalog` partitions objects across N per-shard
:class:`~repro.core.catalog.HybridCatalog` instances (each with its
own sqlite WAL database and reader pool) and federates the paper's
pipeline over them:

* **Writes** route to the owning shard — ids are allocated globally by
  the facade, a :class:`~repro.sharding.router.ShardRouter` maps id
  (or owner) to a shard index, and the write then runs under that
  shard's ordinary transaction protocol.  Definition changes land in
  the shared registry first and fan out to every shard's definition
  tables.
* **Queries** scatter the *unchanged* logical IR to every shard
  (ElementSeek and the count-matching stages are shard-local — an
  object's rows never cross shards), then gather: per-shard sorted id
  lists are disjoint, so a k-way :func:`heapq.merge` restores the
  global object-id order the single-catalog API promises.
* **Caching** stays shard-scoped for free: each shard keeps its own
  write-invalidated result cache keyed to its own stats token, so a
  write to shard *k* only invalidates shard *k*'s cached legs — the
  other N-1 legs of the next federated query are warm hits.  The
  federation-wide token is the tuple of per-shard tokens
  (:meth:`ShardedCatalog.cache_token`).

The parity contract (proven by
``tests/integration/test_shard_parity_properties.py``): for every
query, ``ShardedCatalog(N)`` returns the same ids, the same response
XML, and the same per-stage row totals as one unsharded catalog over
the same corpus, for any N ≥ 1.

Fault sites: ``shard:write`` (before routing a write),
``shard:sync`` (before each definition-sync fan-out leg), and
``shard:query`` (before each scatter-gather leg) — consulted only
when a :class:`~repro.faults.plan.FaultPlan` targets them by name,
mirroring the ``pool:acquire`` convention.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.catalog import Explanation, HybridCatalog, IngestReceipt
from ..core.definitions import AttributeDef, DefinitionRegistry, ElementDef
from ..core.integrity import _rows as _store_rows
from ..core.integrity import check_catalog
from ..core.query import ObjectQuery
from ..core.schema import AnnotatedSchema, ValueType
from ..core.shredder import Shredder
from ..core.stats import StatsSnapshot
from ..core.storage import HybridStore, PlanTrace
from ..core.result_cache import result_key
from ..errors import CatalogClosedError, CatalogError
from ..faults.plan import FaultPlan
from ..faults.sites import check_site
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.profile import QueryProfile, StageProfile, collecting
from ..xmlkit import Document, parse
from .router import HashRouter, ShardRouter
from .topology import shard_db_paths

__all__ = ["ShardedCatalog", "ShardedExplanation", "check_sharded_catalog"]

# Registered federation fault sites (fail fast if the registry and
# this module ever drift — FLT01 covers the literals, check_site the
# runtime names).
SHARD_WRITE = check_site("shard:write")
SHARD_SYNC = check_site("shard:sync")
SHARD_QUERY = check_site("shard:query")


class ShardedExplanation:
    """What :meth:`ShardedCatalog.explain` returns: one
    :class:`~repro.core.catalog.Explanation` per shard leg plus the
    federated view — globally merged ids and per-stage actual row
    counts summed across shards (the totals the parity suite compares
    against the unsharded plan's actuals)."""

    __slots__ = ("legs", "object_ids", "cache_hit", "profile")

    def __init__(
        self,
        legs: List[Explanation],
        profile: Optional[QueryProfile] = None,
    ) -> None:
        self.legs = legs
        self.object_ids = list(heapq.merge(*(leg.object_ids for leg in legs)))
        self.cache_hit = all(leg.cache_hit for leg in legs)
        self.profile = profile

    def stage_keys(self) -> set:
        """The union of executed stage keys across all legs — the
        plan *shape* is shard-independent (same shredded query, same
        shared definition ids), so this equals any one leg's keys."""
        keys: set = set()
        for leg in self.legs:
            keys.update(leg.plan.actuals)
        return keys

    def merged_actuals(self) -> Dict[Tuple, int]:
        """Per-stage actual rows summed over shards.  For the
        ObjectIntersect stage this is exact parity with the unsharded
        plan (objects are disjoint across shards); seek/count stages
        may under-count relative to unsharded when a shard
        short-circuits early on a locally-empty criterion."""
        totals: Dict[Tuple, int] = {}
        for leg in self.legs:
            for key, rows in leg.plan.actuals.items():
                totals[key] = totals.get(key, 0) + rows
        return totals

    def describe(self) -> str:
        lines = [
            f"sharded plan: {len(self.legs)} leg(s), "
            f"{len(self.object_ids)} matching object(s) after k-way merge"
        ]
        for index, leg in enumerate(self.legs):
            lines.append(f"-- shard {index} " + "-" * 40)
            lines.append(leg.describe())
        if self.profile is not None:
            lines.append(self.profile.describe())
        return "\n".join(lines)


class ShardedCatalog:
    """N hybrid catalogs federated behind the single-catalog API.

    ``path`` opens (or creates) on-disk shards ``<path>.shard0`` …
    ``<path>.shard<N-1>`` backed by
    :class:`~repro.backends.sqlite.SqliteHybridStore`; without a
    ``path`` each shard gets an RW-locked in-memory store, and a
    custom ``store_factory(index)`` overrides either default.  All shards share ONE definition registry and shredder —
    definition ids are global, which is what makes the scattered IR
    identical on every shard — and one metrics registry, with
    per-shard series carried by the ``shard`` label.
    """

    def __init__(
        self,
        schema: AnnotatedSchema,
        shards: int = 2,
        *,
        path: Optional[str] = None,
        store_factory: Optional[Callable[[int], HybridStore]] = None,
        router: Optional[ShardRouter] = None,
        on_unknown: str = "store",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if shards < 1:
            raise CatalogError("a sharded catalog needs at least one shard")
        self.schema = schema
        self.metrics = metrics if metrics is not None else default_registry()
        if router is None:
            router = HashRouter(shards)
        if router.shards != shards:
            raise CatalogError(
                f"router covers {router.shards} shard(s), catalog has {shards}"
            )
        self.router = router
        if store_factory is None:
            store_factory = self._default_store_factory(path, shards)
        # Per-shard catalogs: each brings its own store, stats, plan
        # cache, and result cache (shard-scoped invalidation is a
        # consequence of the caches living here, one per shard).
        self.shards: List[HybridCatalog] = [
            HybridCatalog(
                schema,
                store=store_factory(index),
                on_unknown=on_unknown,
                metrics=self.metrics,
            )
            for index in range(shards)
        ]
        # Replace the per-shard registries with ONE shared registry
        # (union-rehydrated from every shard on reopen) and one
        # shredder bound to it, so definition ids are federation-wide.
        self.registry = self._shared_registry(schema)
        self.shredder = Shredder(
            schema, self.registry, on_unknown=on_unknown, metrics=self.metrics
        )
        for cat in self.shards:
            cat.registry = self.registry
            cat.shredder = self.shredder
            # Catch each shard up to the union (sync upserts only the
            # rows a shard is missing).
            cat.store.sync_definitions(self.registry)
        # Global object bookkeeping: ids are allocated here (never by
        # a shard) so routing is a pure function of the ingest.
        self._locations: Dict[int, int] = {}
        max_id = 0
        for index, cat in enumerate(self.shards):
            for object_id in cat._names:
                previous = self._locations.get(object_id)
                if previous is not None:
                    raise CatalogError(
                        f"object {object_id} present in shards "
                        f"{previous} and {index}"
                    )
                self._locations[object_id] = index
                max_id = max(max_id, object_id)
        self._object_ids = itertools.count(max_id + 1)
        self._write_lock = threading.Lock()
        self._closed = False
        self._fault_plan: Optional[FaultPlan] = None
        # Scatter-gather worker pool (threads spawn lazily on first
        # submit); the single-shard layout stays executor-free so the
        # N=1 wrapper overhead is just the routing bookkeeping.
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=shards, thread_name_prefix="repro-shard"
            )
            if shards > 1
            else None
        )
        self.last_profile: Optional[QueryProfile] = None
        # Pre-bound labeled metric children: the registry lookup and
        # label resolution are off the per-query path (the N=1 wrapper
        # budget is ≤5%, and an N-shard query touches N counters).
        counter = self.metrics.counter(
            "shard_queries_total",
            "scatter-gather query legs executed, per shard",
            labels=("shard",),
        )
        self._leg_counters = [
            counter.labels(shard=str(index)) for index in range(shards)
        ]
        gauge = self.metrics.gauge(
            "shard_objects",
            "objects currently held by each shard",
            labels=("shard",),
        )
        self._object_gauges = [
            gauge.labels(shard=str(index)) for index in range(shards)
        ]
        self._fanout_histogram = self.metrics.histogram(
            "shard_fanout_seconds",
            "wall time of one scatter-gather fan-out "
            "(dispatch through k-way merge)",
        )
        self._after_write()

    @staticmethod
    def _default_store_factory(
        path: Optional[str], shards: int
    ) -> Callable[[int], HybridStore]:
        if path is None:
            # Mirror HybridCatalog's default: the RW-locked memory
            # store, which (unlike a ``:memory:`` sqlite connection)
            # is safe under the scatter-gather thread pool.
            from ..core.storage import MemoryHybridStore

            return lambda index: MemoryHybridStore()
        # Imported here so repro.sharding does not hard-depend on the
        # sqlite backend when a caller supplies its own factory.
        from ..backends.sqlite import SqliteHybridStore

        paths = shard_db_paths(path, shards)
        return lambda index: SqliteHybridStore(paths[index])

    def _shared_registry(self, schema: AnnotatedSchema) -> DefinitionRegistry:
        """One registry for the whole federation: the union of every
        shard's persisted definition rows, deduplicated by id.  Shards
        that cannot be reopened (fresh in-memory stores) contribute
        nothing — their registries hold only the structural rows the
        fresh shared registry already has."""
        attr_union: Dict[int, tuple] = {}
        elem_union: Dict[int, tuple] = {}
        for index, cat in enumerate(self.shards):
            try:
                attr_rows, elem_rows = cat.store.load_definition_rows()
            except CatalogError:
                continue
            for row in attr_rows:
                row = tuple(row)
                previous = attr_union.setdefault(row[0], row)
                if previous != row:
                    raise CatalogError(
                        f"shard {index} disagrees on attribute "
                        f"definition {row[0]}"
                    )
            for row in elem_rows:
                row = tuple(row)
                previous = elem_union.setdefault(row[0], row)
                if previous != row:
                    raise CatalogError(
                        f"shard {index} disagrees on element "
                        f"definition {row[0]}"
                    )
        registry = DefinitionRegistry(schema)
        if attr_union or elem_union:
            registry.rehydrate(
                [attr_union[k] for k in sorted(attr_union)],
                [elem_union[k] for k in sorted(elem_union)],
            )
        return registry

    # ------------------------------------------------------------------
    # Federation bookkeeping
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, object_id: int) -> int:
        """The shard index owning ``object_id``."""
        try:
            return self._locations[object_id]
        except KeyError:
            raise CatalogError(f"no object {object_id}") from None

    def object_name(self, object_id: int) -> str:
        return self.shards[self.shard_of(object_id)].object_name(object_id)

    def __len__(self) -> int:
        return sum(len(cat) for cat in self.shards)

    def cache_token(self) -> Tuple[Tuple[int, int], ...]:
        """The federated stats token: one per-shard token per slot.  A
        write to one shard moves exactly one slot — the invalidation
        scope the concurrency suite asserts."""
        return tuple(cat.stats.cache_token() for cat in self.shards)

    def _check_open(self) -> None:
        if self._closed:
            raise CatalogClosedError(
                "sharded catalog is closed; reopen it to continue"
            )

    def _after_write(self) -> None:
        """Republish the federation-wide object gauges."""
        for index, cat in enumerate(self.shards):
            self._object_gauges[index].set(len(cat._names))
        # Route the catalog-wide total through the shard-0 facade so
        # OBS01's single-creation-site rule holds for catalog_objects.
        self.shards[0]._set_objects_gauge(count=len(self._locations))

    def _count_shard_query(self, shard: int) -> None:
        self._leg_counters[shard].inc()

    def _observe_fanout(self, seconds: float) -> None:
        self._fanout_histogram.observe(seconds)

    # ------------------------------------------------------------------
    # Faults (mirrors the HybridStore surface; the plan is also armed
    # on every shard store so statement-level sweeps keep working)
    # ------------------------------------------------------------------
    def install_faults(self, plan: FaultPlan) -> FaultPlan:
        self._fault_plan = plan
        for cat in self.shards:
            cat.store.install_faults(plan)
        return plan

    def clear_faults(self) -> None:
        self._fault_plan = None
        for cat in self.shards:
            cat.store.clear_faults()

    def set_retry_policy(self, policy) -> None:
        for cat in self.shards:
            cat.store.set_retry_policy(policy)

    def _shard_fault(self, site: str) -> None:
        """Consult the armed plan at a federation point.  Only plans
        that *target* a ``shard:*`` site by name are consulted here —
        statement-level sweeps (``fail_at`` over ``insert:*``) pass
        through untouched, so their deterministic counts do not drift
        when the routing layer sits in front of the store."""
        plan = self._fault_plan
        if plan is not None and plan.site == site:
            plan.before(site, self.metrics)

    # ------------------------------------------------------------------
    # Definitions (shared registry first, then fan out)
    # ------------------------------------------------------------------
    def define_attribute(
        self,
        name: str,
        source: str,
        host: str = "detailed",
        parent: Optional[AttributeDef] = None,
        user: Optional[str] = None,
        queryable: bool = True,
    ) -> AttributeDef:
        self._check_open()
        attr_def = self.registry.define_attribute(
            name, source, host=host, parent=parent, user=user, queryable=queryable
        )
        self._sync_all()
        return attr_def

    def define_element(
        self,
        attribute: AttributeDef,
        name: str,
        source: str,
        value_type: ValueType = ValueType.STRING,
        user: Optional[str] = None,
    ) -> ElementDef:
        self._check_open()
        elem_def = self.registry.define_element(
            attribute, name, source, value_type, user=user
        )
        self._sync_all()
        return elem_def

    def _sync_all(self) -> None:
        """Fan the shared registry out to every shard's definition
        tables.  A mid-fan-out failure (the ``shard:sync`` crash
        point) leaves the registry defined but trailing shards
        unsynced; :meth:`resync_definitions` heals that — sync is an
        upsert of whatever rows a shard is missing."""
        for cat in self.shards:
            self._shard_fault(SHARD_SYNC)
            cat.store.sync_definitions(self.registry)
            cat.stats.invalidate()

    def resync_definitions(self) -> None:
        """Catch every shard up to the shared registry — the recovery
        path after a definition fan-out failed partway."""
        self._check_open()
        self._sync_all()

    # ------------------------------------------------------------------
    # Writes (route to the owning shard)
    # ------------------------------------------------------------------
    def ingest(
        self,
        document: Union[str, Document],
        name: Optional[str] = "",
        owner: str = "",
        user: Optional[str] = None,
    ) -> IngestReceipt:
        """Shred and store one document on its owning shard.  The
        facade allocates the object id globally *after* the document
        parses (and after the ``shard:write`` consult), so failed
        ingests burn no ids and routing is reproducible from the
        arguments alone."""
        self._check_open()
        self._shard_fault(SHARD_WRITE)
        if isinstance(document, str):
            document = parse(document)
        with self._write_lock:
            object_id = next(self._object_ids)
        shard = self.router.route(object_id, owner)
        receipt = self.shards[shard].ingest(
            document, name=name, owner=owner, user=user, object_id=object_id
        )
        with self._write_lock:
            self._locations[object_id] = shard
        self._after_write()
        return receipt

    def ingest_many(
        self,
        documents: Sequence[Union[str, Document]],
        owner: str = "",
        user: Optional[str] = None,
    ) -> List[IngestReceipt]:
        return [
            self.ingest(doc, name=None, owner=owner, user=user)
            for doc in documents
        ]

    def delete(self, object_id: int) -> None:
        self._check_open()
        self._shard_fault(SHARD_WRITE)
        shard = self.shard_of(object_id)
        self.shards[shard].delete(object_id)
        with self._write_lock:
            self._locations.pop(object_id, None)
        self._after_write()

    def add_attribute(
        self,
        object_id: int,
        fragment: Union[str, Document],
        user: Optional[str] = None,
    ) -> IngestReceipt:
        self._check_open()
        self._shard_fault(SHARD_WRITE)
        return self.shards[self.shard_of(object_id)].add_attribute(
            object_id, fragment, user=user
        )

    def remove_attribute(
        self,
        object_id: int,
        name: str,
        source: str = "",
        seq: int = 1,
        user: Optional[str] = None,
    ) -> None:
        self._check_open()
        self._shard_fault(SHARD_WRITE)
        self.shards[self.shard_of(object_id)].remove_attribute(
            object_id, name, source, seq, user=user
        )

    # ------------------------------------------------------------------
    # Query (scatter, then order-preserving gather)
    # ------------------------------------------------------------------
    def query(
        self,
        query: ObjectQuery,
        user: Optional[str] = None,
        trace: Optional[PlanTrace] = None,
        profile: bool = False,
    ) -> List[int]:
        """Match objects across every shard; returns globally sorted
        object ids — the same list an unsharded catalog over the same
        corpus would return (the parity property).

        Each shard leg runs the unchanged logical IR against its local
        rows (every shard re-checks its own store's open state, so a
        closed shard raises :class:`~repro.errors.CatalogClosedError`
        instead of silently returning a partial federation).  Legs
        fan out on a thread pool (sqlite releases the GIL while
        scanning), per-leg sorted ids are disjoint by construction,
        and a k-way merge restores global order.  An explicit
        ``trace`` receives one summary stage per shard plus the final
        ``scatter-gather`` stage; per-leg traces bypass the per-shard
        result caches exactly like the unsharded path."""
        self._check_open()
        if len(self.shards) == 1:
            # Single-shard fast path: delegate wholesale — no
            # executor, no merge (the ≤5 % wrapper budget of E14).
            self._shard_fault(SHARD_QUERY)
            self._count_shard_query(0)
            ids = self.shards[0].query(
                query, user=user, trace=trace, profile=profile
            )
            if profile:
                self.last_profile = self.shards[0].last_profile
            return ids
        t0 = time.perf_counter()
        leg_traces: List[Optional[PlanTrace]] = [
            PlanTrace() if trace is not None else None for _ in self.shards
        ]
        leg_profiles: List[Optional[QueryProfile]] = [None] * len(self.shards)

        def run_leg(index: int) -> List[int]:
            cat = self.shards[index]
            if profile:
                # A fresh collector per worker thread: contextvars do
                # not cross ThreadPoolExecutor boundaries, so legs
                # cannot clobber each other (or the caller's ambient
                # profile).
                prof = QueryProfile()
                with collecting(prof):
                    ids = cat.query(query, user=user, trace=leg_traces[index])
                leg_profiles[index] = prof
                return ids
            return cat.query(query, user=user, trace=leg_traces[index])

        assert self._executor is not None
        futures = []
        error: Optional[BaseException] = None
        for index in range(len(self.shards)):
            try:
                # Consulted sequentially before dispatch so a
                # fail_at sweep over shard:query is deterministic.
                self._shard_fault(SHARD_QUERY)
            except BaseException as exc:
                error = exc
                break
            self._count_shard_query(index)
            futures.append(self._executor.submit(run_leg, index))
        results: List[List[int]] = []
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                if error is None:
                    error = exc
        if error is not None:
            # Never hand back a partial federation: outstanding legs
            # were drained above, the caller gets the failure.
            raise error
        ids = list(heapq.merge(*results))
        fanout_seconds = time.perf_counter() - t0
        self._observe_fanout(fanout_seconds)
        if trace is not None:
            for index, leg_trace in enumerate(leg_traces):
                assert leg_trace is not None
                trace.add(
                    f"shard-{index}",
                    len(results[index]),
                    note=f"{len(leg_trace.stages)} local stage(s)",
                )
            trace.add(
                "scatter-gather",
                len(ids),
                note=f"k-way merge over {len(self.shards)} shard(s)",
            )
        if profile:
            self.last_profile = _merge_profiles(
                [p for p in leg_profiles if p is not None],
                results,
                ids,
                fanout_seconds,
            )
        return ids

    def explain(
        self,
        query: ObjectQuery,
        user: Optional[str] = None,
        analyze: bool = False,
    ) -> ShardedExplanation:
        """Per-shard plans with estimates and actuals, plus the
        federated merge (the ``repro explain`` surface for sharded
        catalogs).  Legs run sequentially — explain is a diagnostic
        path, and a stable leg order keeps its output reproducible."""
        self._check_open()
        t0 = time.perf_counter()
        legs: List[Explanation] = []
        for index, cat in enumerate(self.shards):
            self._shard_fault(SHARD_QUERY)
            self._count_shard_query(index)
            legs.append(cat.explain(query, user=user, analyze=analyze))
        profile: Optional[QueryProfile] = None
        if analyze:
            merged_ids = list(heapq.merge(*(leg.object_ids for leg in legs)))
            profile = _merge_profiles(
                [leg.profile for leg in legs if leg.profile is not None],
                [leg.object_ids for leg in legs],
                merged_ids,
                time.perf_counter() - t0,
            )
            self.last_profile = profile
        return ShardedExplanation(legs, profile=profile)

    def result_cache_key(self, query: ObjectQuery, user: Optional[str] = None):
        """The per-shard result-cache key this query uses (identical
        on every shard — one shared registry shreds it).  Exposed for
        the shard-scoped invalidation assertions in the tests."""
        return result_key(self.shards[0].shred_query(query, user=user))

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def fetch(self, object_ids: Sequence[int]) -> Dict[int, str]:
        """Rebuild tagged XML responses, shard by shard.  Each shard
        runs the unchanged set-wise response builder over its own ids;
        the merged dict is keyed by object id so callers are
        agnostic to the partitioning."""
        self._check_open()
        by_shard: Dict[int, List[int]] = {}
        for object_id in object_ids:
            shard = self._locations.get(object_id)
            if shard is None:
                continue
            by_shard.setdefault(shard, []).append(object_id)
        responses: Dict[int, str] = {}
        for shard in sorted(by_shard):
            responses.update(self.shards[shard].fetch(by_shard[shard]))
        return responses

    def search(
        self,
        query: ObjectQuery,
        user: Optional[str] = None,
        trace: Optional[PlanTrace] = None,
    ) -> List[str]:
        ids = self.query(query, user=user, trace=trace)
        responses = self.fetch(ids)
        return [responses[i] for i in ids]

    # ------------------------------------------------------------------
    # Accounting / lifecycle
    # ------------------------------------------------------------------
    def storage_report(self) -> List[Tuple[str, int, int]]:
        """Per-table ``(name, rows, bytes)`` summed across shards."""
        totals: Dict[str, List[int]] = {}
        order: List[str] = []
        for cat in self.shards:
            for table, rows, size in cat.storage_report():
                if table not in totals:
                    totals[table] = [0, 0]
                    order.append(table)
                totals[table][0] += rows
                totals[table][1] += size
        return [(table, totals[table][0], totals[table][1]) for table in order]

    def collect_statistics(self) -> StatsSnapshot:
        """One federation-wide :class:`~repro.core.stats.StatsSnapshot`
        — row counts sum exactly (objects are disjoint); summed
        distinct counts are an upper bound, which is the same
        one-sided error the per-shard optimizers already tolerate."""
        self._check_open()
        objects = 0
        elem_rows: Dict[int, int] = {}
        elem_distinct: Dict[int, int] = {}
        attr_rows: Dict[int, int] = {}
        for cat in self.shards:
            snapshot = cat.store.collect_statistics()
            objects += snapshot.objects
            for elem_id, rows in snapshot.elem_rows.items():
                elem_rows[elem_id] = elem_rows.get(elem_id, 0) + rows
            for elem_id, distinct in snapshot.elem_distinct.items():
                elem_distinct[elem_id] = (
                    elem_distinct.get(elem_id, 0) + distinct
                )
            for attr_id, rows in snapshot.attr_rows.items():
                attr_rows[attr_id] = attr_rows.get(attr_id, 0) + rows
        return StatsSnapshot(objects, elem_rows, elem_distinct, attr_rows)

    def shard_status(self) -> List[Tuple[int, Optional[str], int, int]]:
        """Per-shard ``(index, path, objects, bytes)`` for the
        ``repro shard-status`` CLI surface."""
        status = []
        for index, cat in enumerate(self.shards):
            path = getattr(cat.store, "_path", None)
            total_bytes = sum(size for _t, _r, size in cat.storage_report())
            status.append((index, path, len(cat), total_bytes))
        return status

    def close(self) -> None:
        """Close every shard.  Idempotent; one failing shard does not
        leave the others open — all stores are closed before the first
        failure (if any) is re-raised."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        errors: List[BaseException] = []
        for cat in self.shards:
            try:
                cat.store.close()
            except BaseException as exc:  # noqa: BLE001 - close all first
                errors.append(exc)
        if errors:
            raise errors[0]


def _merge_profiles(
    leg_profiles: List[QueryProfile],
    leg_results: List[List[int]],
    merged_ids: List[int],
    fanout_seconds: float,
) -> QueryProfile:
    """Fold per-leg profiles into the federated view: same-keyed
    stages (the plan shape is shard-independent) sum their rows and
    wall times, and a synthetic ``ScatterGather`` stage carries the
    fan-out/merge accounting — the scatter-gather stage of ``repro
    explain --analyze`` output."""
    merged = QueryProfile()
    merged.backend = "sharded"
    merged.total_seconds = fanout_seconds
    if leg_profiles:
        merged.result_cache_hit = all(
            p.result_cache_hit for p in leg_profiles
        )
        hits = [p.plan_cache_hit for p in leg_profiles
                if p.plan_cache_hit is not None]
        merged.plan_cache_hit = all(hits) if hits else None
        merged.short_circuited = any(p.short_circuited for p in leg_profiles)
        simples = [p.simple for p in leg_profiles if p.simple is not None]
        merged.simple = simples[0] if simples else None
    by_key: Dict[Tuple, StageProfile] = {}
    order: List[Tuple] = []
    for prof in leg_profiles:
        for stage in prof.stages:
            merged_key = (stage.kind,) + tuple(stage.key)
            existing = by_key.get(merged_key)
            if existing is None:
                by_key[merged_key] = StageProfile(
                    stage.kind, stage.key, stage.detail,
                    stage.rows_in, stage.rows_out,
                    stage.est_rows, stage.seconds,
                )
                order.append(merged_key)
            else:
                existing.rows_in += stage.rows_in
                existing.rows_out += stage.rows_out
                existing.seconds += stage.seconds
                if stage.est_rows is not None:
                    existing.est_rows = (
                        (existing.est_rows or 0.0) + stage.est_rows
                    )
    merged.stages = [by_key[key] for key in order]
    merged.stages.append(StageProfile(
        "ScatterGather",
        ("scatter-gather",),
        f"k-way merge over {len(leg_results)} shard leg(s)",
        sum(len(r) for r in leg_results),
        len(merged_ids),
        None,
        fanout_seconds,
    ))
    for prof in leg_profiles:
        for kind, seconds in prof.waits.items():
            merged.waits[kind] = merged.waits.get(kind, 0.0) + seconds
    return merged


def check_sharded_catalog(catalog: ShardedCatalog, deep: bool = False) -> List[str]:
    """Integrity check for a sharded catalog: every shard passes the
    single-catalog :func:`~repro.core.integrity.check_catalog` suite
    (violations prefixed ``shard <i>:``), plus the federation
    invariants — object ids disjoint across shards, the routing map
    consistent with the stored rows, and every stored object placed on
    the shard its router says owns it."""
    violations: List[str] = []
    for index, cat in enumerate(catalog.shards):
        for violation in check_catalog(cat, deep=deep):
            violations.append(f"shard {index}: {violation}")
    seen: Dict[int, int] = {}
    for index, cat in enumerate(catalog.shards):
        for object_id, _name, owner in _object_rows(cat.store):
            previous = seen.get(object_id)
            if previous is not None:
                violations.append(
                    f"object {object_id} stored in shards "
                    f"{previous} and {index}"
                )
                continue
            seen[object_id] = index
            recorded = catalog._locations.get(object_id)
            if recorded != index:
                violations.append(
                    f"object {object_id} stored in shard {index} but "
                    f"routing map says {recorded}"
                )
            expected = catalog.router.route(object_id, owner)
            if expected != index:
                violations.append(
                    f"object {object_id} (owner {owner!r}) stored in "
                    f"shard {index} but routes to {expected}"
                )
    for object_id, recorded in catalog._locations.items():
        if object_id not in seen:
            violations.append(
                f"routing map lists object {object_id} on shard "
                f"{recorded} but no shard stores it"
            )
    return violations


def _object_rows(store: HybridStore) -> List[tuple]:
    """``(object_id, name, owner)`` rows from either backend (the
    federation checks need the owner column to re-run the router)."""
    return _store_rows(store, "objects")
