"""Shard routing: which of the N shard databases owns an object.

A :class:`ShardRouter` is a pure, deterministic function from an
object's identity to a shard index.  Determinism matters twice over:
the same catalog reopened in another process must route every object
to the same shard it was written to, and the sharding parity suite
relies on routing being a function of the ingest arguments alone.
Neither router may therefore use :func:`hash` (salted per process) —
both mix their key through fixed integer arithmetic.

Two routers ship:

* :class:`HashRouter` — partition by object id.  Ids are allocated
  globally and sequentially by the sharded facade, so a bit-mixing
  step (a splitmix64-style finalizer) spreads consecutive ids across
  shards instead of striping them modulo N.
* :class:`UserRouter` — partition by the ``owner`` string (CRC-32 of
  its UTF-8 bytes), the AMGA-style per-user layout: one grid user's
  objects land together, so single-owner scans touch one shard.
"""

from __future__ import annotations

import zlib

__all__ = ["ShardRouter", "HashRouter", "UserRouter", "router_for"]

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """splitmix64's finalizer: a fixed avalanche permutation of the
    64-bit integers (Steele et al.), stable across processes."""
    value = value & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class ShardRouter:
    """Deterministic object → shard-index mapping."""

    #: Topology-sidecar tag (see :mod:`repro.sharding.topology`).
    kind = "abstract"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("a sharded catalog needs at least one shard")
        self.shards = shards

    def route(self, object_id: int, owner: str = "") -> int:
        """The shard index in ``[0, shards)`` owning this object."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind} over {self.shards} shard(s)"


class HashRouter(ShardRouter):
    """Partition by object id (the default layout)."""

    kind = "hash"

    def route(self, object_id: int, owner: str = "") -> int:
        return _mix64(object_id) % self.shards


class UserRouter(ShardRouter):
    """Partition by owner, falling back to id-hash for ownerless
    objects so they still spread instead of piling onto shard 0."""

    kind = "user"

    def route(self, object_id: int, owner: str = "") -> int:
        if not owner:
            return _mix64(object_id) % self.shards
        return zlib.crc32(owner.encode("utf-8")) % self.shards


_ROUTERS = {HashRouter.kind: HashRouter, UserRouter.kind: UserRouter}


def router_for(kind: str, shards: int) -> ShardRouter:
    """Instantiate a router by its topology tag (``hash`` / ``user``)."""
    try:
        cls = _ROUTERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown shard router {kind!r} (known: {sorted(_ROUTERS)})"
        ) from None
    return cls(shards)
