"""Shard-topology persistence for on-disk sharded catalogs.

A sharded catalog is N sqlite files plus one tiny JSON sidecar
(``<base>.shards.json``) recording how to reopen them: the shard
count and the router kind.  The sidecar is what lets every later CLI
invocation (``repro query --db cat.db``) discover that ``cat.db`` is
a federation rather than a single database — shard files themselves
are ordinary catalogs and carry no federation marker.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Optional

__all__ = [
    "Topology",
    "shard_db_paths",
    "topology_sidecar",
    "read_topology",
    "write_topology",
]

_VERSION = 1


class Topology:
    """What the sidecar records: shard count and router kind."""

    __slots__ = ("shards", "router")

    def __init__(self, shards: int, router: str = "hash") -> None:
        if shards < 1:
            raise ValueError("topology needs at least one shard")
        self.shards = shards
        self.router = router

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(shards={self.shards}, router={self.router!r})"


def shard_db_paths(base: str, shards: int) -> List[str]:
    """The per-shard database files for a base catalog path:
    ``cat.db`` → ``cat.db.shard0`` … ``cat.db.shard<N-1>``."""
    return [f"{base}.shard{index}" for index in range(shards)]


def topology_sidecar(base: str) -> pathlib.Path:
    return pathlib.Path(base + ".shards.json")


def write_topology(base: str, topology: Topology) -> pathlib.Path:
    path = topology_sidecar(base)
    path.write_text(json.dumps(
        {"version": _VERSION, "shards": topology.shards,
         "router": topology.router},
        indent=2, sort_keys=True,
    ))
    return path


def read_topology(base: str) -> Optional[Topology]:
    """The recorded topology, or ``None`` when ``base`` is not a
    sharded catalog (no sidecar)."""
    path = topology_sidecar(base)
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    if data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported shard-topology version {data.get('version')!r}"
        )
    return Topology(int(data["shards"]), str(data.get("router", "hash")))
