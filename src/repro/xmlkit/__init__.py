"""``repro.xmlkit`` — a small span-preserving XML toolkit (system S1).

The catalog's shredder needs byte-exact subtree CLOBs, so this package
provides its own parser that records source spans on every element; see
:mod:`repro.xmlkit.parser` for the rationale.

Public surface:

* :func:`parse`, :func:`parse_fragment` — strict parsing with spans.
* :class:`Element`, :class:`Document`, :func:`element` — the node model.
* :func:`pretty_print`, :func:`canonical` — serialization helpers.
* :func:`escape_text`, :func:`escape_attribute`, :func:`unescape`.
"""

from .escape import escape_attribute, escape_text, unescape
from .nodes import Document, Element, element
from .parser import XMLSyntaxError, parse, parse_fragment, parse_span
from .serializer import canonical, pretty_print
from .xpath import XPathError, xpath, xpath_exists

__all__ = [
    "Document",
    "Element",
    "XMLSyntaxError",
    "XPathError",
    "canonical",
    "element",
    "escape_attribute",
    "escape_text",
    "parse",
    "parse_fragment",
    "parse_span",
    "pretty_print",
    "unescape",
    "xpath",
    "xpath_exists",
]
