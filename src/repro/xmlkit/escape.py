"""Character escaping for XML content and attribute values.

Only the five predefined XML entities plus decimal/hex character
references are supported; the grid metadata documents the catalog
handles never rely on DTD-defined entities.
"""

from __future__ import annotations

_TEXT_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}

_ATTR_ESCAPES = dict(_TEXT_ESCAPES)
_ATTR_ESCAPES['"'] = "&quot;"

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(value: str) -> str:
    """Escape ``value`` for use as XML character data."""
    if not ("&" in value or "<" in value or ">" in value):
        return value
    out = []
    for ch in value:
        out.append(_TEXT_ESCAPES.get(ch, ch))
    return "".join(out)


def escape_attribute(value: str) -> str:
    """Escape ``value`` for use inside a double-quoted attribute value."""
    if not ("&" in value or "<" in value or ">" in value or '"' in value):
        return value
    out = []
    for ch in value:
        out.append(_ATTR_ESCAPES.get(ch, ch))
    return "".join(out)


def unescape(value: str) -> str:
    """Resolve entity and character references in ``value``.

    Raises
    ------
    ValueError
        If a reference is malformed or names an unknown entity.
    """
    if "&" not in value:
        return value
    out = []
    i = 0
    n = len(value)
    while i < n:
        ch = value[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = value.find(";", i + 1)
        if end < 0:
            raise ValueError(f"unterminated entity reference at offset {i}")
        body = value[i + 1 : end]
        if not body:
            raise ValueError(f"empty entity reference at offset {i}")
        if body.startswith("#x") or body.startswith("#X"):
            out.append(chr(int(body[2:], 16)))
        elif body.startswith("#"):
            out.append(chr(int(body[1:], 10)))
        else:
            try:
                out.append(_NAMED_ENTITIES[body])
            except KeyError:
                raise ValueError(f"unknown entity &{body};") from None
        i = end + 1
    return "".join(out)
