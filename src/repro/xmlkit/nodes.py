"""Document object model used throughout the catalog.

The model is deliberately small: elements, attributes, and text.  Two
features matter to the hybrid catalog and are absent from the standard
library model:

* **Source spans** — every element parsed from text records the half-open
  ``[start, end)`` offsets of its serialized form in the original
  document, so the shredder can store byte-exact CLOBs without
  re-serializing (re-serialization could normalize whitespace and break
  the paper's "CLOBs are verbatim" property).
* **Stable child order** — children are a plain list; document order is
  the list order everywhere.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from .escape import escape_attribute, escape_text

Child = Union["Element", str]


class Element:
    """An XML element: tag, attributes, and ordered children.

    Children are either :class:`Element` instances or plain strings
    (character data).  ``source_span`` is ``(start, end)`` into the text
    the element was parsed from, or ``None`` for programmatically built
    trees.
    """

    __slots__ = ("tag", "attributes", "children", "source_span")

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        children: Optional[List[Child]] = None,
        source_span: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.tag = tag
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.children: List[Child] = list(children or [])
        self.source_span = source_span

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, child: Child) -> "Element":
        """Append ``child`` and return ``self`` (chainable)."""
        self.children.append(child)
        return self

    def extend(self, children: List[Child]) -> "Element":
        self.children.extend(children)
        return self

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def child_elements(self) -> List["Element"]:
        """All element children in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    def find(self, tag: str) -> Optional["Element"]:
        """First child element with ``tag``, or ``None``."""
        for c in self.children:
            if isinstance(c, Element) and c.tag == tag:
                return c
        return None

    def find_all(self, tag: str) -> List["Element"]:
        """All child elements with ``tag`` in document order."""
        return [c for c in self.children if isinstance(c, Element) and c.tag == tag]

    def text(self) -> str:
        """Concatenated character data of *direct* children."""
        return "".join(c for c in self.children if isinstance(c, str))

    def deep_text(self) -> str:
        """Concatenated character data of the whole subtree."""
        parts: List[str] = []
        for node in self.iter():
            for c in node.children:
                if isinstance(c, str):
                    parts.append(c)
        return "".join(parts)

    def iter(self) -> Iterator["Element"]:
        """Pre-order iterator over this element and all descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.child_elements()))

    def has_element_children(self) -> bool:
        return any(isinstance(c, Element) for c in self.children)

    def descendant_count(self) -> int:
        """Number of elements in the subtree, including self."""
        return sum(1 for _ in self.iter())

    # ------------------------------------------------------------------
    # Serialization (compact; pretty printing lives in serializer.py)
    # ------------------------------------------------------------------
    def to_xml(self) -> str:
        """Compact serialization with minimal escaping."""
        out: List[str] = []
        self._write(out)
        return "".join(out)

    def _write(self, out: List[str]) -> None:
        out.append("<")
        out.append(self.tag)
        for name, value in self.attributes.items():
            out.append(f' {name}="{escape_attribute(value)}"')
        if not self.children:
            out.append("/>")
            return
        out.append(">")
        for child in self.children:
            if isinstance(child, Element):
                child._write(out)
            else:
                out.append(escape_text(child))
        out.append(f"</{self.tag}>")

    # ------------------------------------------------------------------
    # Comparison / debugging
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "Element", ignore_whitespace: bool = True) -> bool:
        """Deep equality of tag, attributes, and children.

        With ``ignore_whitespace`` (the default), text children that are
        pure whitespace are dropped on both sides and remaining text is
        stripped — the comparison the catalog round-trip tests need,
        since indentation is not significant in the metadata documents.
        """
        if self.tag != other.tag or self.attributes != other.attributes:
            return False
        mine = _comparable_children(self, ignore_whitespace)
        theirs = _comparable_children(other, ignore_whitespace)
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if isinstance(a, Element) != isinstance(b, Element):
                return False
            if isinstance(a, Element):
                if not a.structurally_equal(b, ignore_whitespace):  # type: ignore[arg-type]
                    return False
            elif a != b:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element({self.tag!r}, children={len(self.children)})"


def _comparable_children(element: Element, ignore_whitespace: bool) -> List[Child]:
    if not ignore_whitespace:
        return element.children
    result: List[Child] = []
    for c in element.children:
        if isinstance(c, str):
            stripped = c.strip()
            if stripped:
                result.append(stripped)
        else:
            result.append(c)
    return result


class Document:
    """A parsed XML document: the root element plus the source text.

    ``source`` is retained so callers can slice verbatim CLOBs with
    :meth:`slice` using element source spans.
    """

    __slots__ = ("root", "source")

    def __init__(self, root: Element, source: Optional[str] = None) -> None:
        self.root = root
        self.source = source

    def slice(self, element: Element) -> str:
        """The verbatim source text of ``element``.

        Falls back to re-serialization for elements without spans (for
        programmatically built documents).
        """
        if self.source is not None and element.source_span is not None:
            start, end = element.source_span
            return self.source[start:end]
        return element.to_xml()

    def to_xml(self) -> str:
        return self.root.to_xml()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document(root={self.root.tag!r})"


def element(tag: str, *children: Child, **attributes: str) -> Element:
    """Terse constructor used heavily by tests and generators.

    >>> element("theme", element("themekt", "CF NetCDF")).to_xml()
    '<theme><themekt>CF NetCDF</themekt></theme>'
    """
    return Element(tag, attributes=attributes, children=list(children))
