"""A small, strict, span-preserving XML parser.

The parser covers the subset of XML that grid metadata documents use:
elements, attributes, character data, CDATA sections, comments,
processing instructions, and an optional XML declaration.  It does not
process DTDs or namespaces (the LEAD schema of the paper is
namespace-free; tags are compared as written).

Why not the standard library?  The hybrid shredder stores each metadata
attribute subtree as a **verbatim CLOB** (paper §3).  That requires
knowing, for every element, the exact offsets of its serialized form in
the source text — which ``xml.etree`` does not expose.  The parser here
records a half-open ``(start, end)`` span on every element.

The implementation is a single left-to-right scan (no backtracking), so
parsing is O(n) in the document length — the property the ingest
benchmarks (E1) rely on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .escape import unescape
from .nodes import Document, Element


class XMLSyntaxError(ValueError):
    """Raised for malformed documents; carries line/column context.

    Must survive a pickle round trip: the bulk loader shreds in worker
    processes, and an exception the executor cannot unpickle kills the
    whole pool (``BrokenProcessPool``) instead of failing one batch.
    """

    def __init__(self, message: str, source: str, offset: int) -> None:
        line = source.count("\n", 0, offset) + 1
        last_nl = source.rfind("\n", 0, offset)
        column = offset - last_nl
        super().__init__(f"{message} (line {line}, column {column})")
        self.offset = offset
        self.line = line
        self.column = column

    def __reduce__(self):
        # Rebuild from the already-formatted message; position fields
        # are restored from the state dict, not recomputed.
        return (_rebuild_syntax_error, (self.args[0],), self.__dict__)


def _rebuild_syntax_error(message: str) -> "XMLSyntaxError":
    exc = XMLSyntaxError.__new__(XMLSyntaxError)
    ValueError.__init__(exc, message)
    return exc


_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")


class _Parser:
    __slots__ = ("source", "pos", "length")

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.length = len(source)

    # -- low-level helpers ------------------------------------------------
    def error(self, message: str, offset: Optional[int] = None) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.source, self.pos if offset is None else offset)

    def skip_whitespace(self) -> None:
        src, n = self.source, self.length
        i = self.pos
        while i < n and src[i] in _WHITESPACE:
            i += 1
        self.pos = i

    def expect(self, literal: str) -> None:
        if not self.source.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_name(self) -> str:
        src = self.source
        start = self.pos
        if start >= self.length or src[start] not in _NAME_START:
            raise self.error("expected a name")
        i = start + 1
        n = self.length
        while i < n and src[i] in _NAME_CHARS:
            i += 1
        self.pos = i
        return src[start:i]

    # -- prolog / misc -----------------------------------------------------
    def skip_misc(self) -> None:
        """Skip whitespace, comments, PIs and the XML declaration."""
        while True:
            self.skip_whitespace()
            if self.source.startswith("<?", self.pos):
                end = self.source.find("?>", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.source.startswith("<!--", self.pos):
                end = self.source.find("-->", self.pos + 4)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.source.startswith("<!DOCTYPE", self.pos):
                # Skip a simple (bracket-free or internal-subset) doctype.
                depth = 0
                i = self.pos
                while i < self.length:
                    ch = self.source[i]
                    if ch == "[":
                        depth += 1
                    elif ch == "]":
                        depth -= 1
                    elif ch == ">" and depth == 0:
                        self.pos = i + 1
                        break
                    i += 1
                else:
                    raise self.error("unterminated DOCTYPE")
            else:
                return

    # -- element parsing -----------------------------------------------------
    def parse_document(self) -> Document:
        self.skip_misc()
        if self.pos >= self.length or self.source[self.pos] != "<":
            raise self.error("expected root element")
        root = self.parse_element()
        self.skip_misc()
        if self.pos != self.length:
            raise self.error("trailing content after root element")
        return Document(root, source=self.source)

    def parse_element(self) -> Element:
        start = self.pos
        self.expect("<")
        tag = self.read_name()
        attributes = self.parse_attributes()
        self.skip_whitespace()
        if self.source.startswith("/>", self.pos):
            self.pos += 2
            return Element(tag, attributes=attributes, source_span=(start, self.pos))
        self.expect(">")
        children = self.parse_content(tag)
        element = Element(tag, attributes=attributes, children=children)
        element.source_span = (start, self.pos)
        return element

    def parse_attributes(self) -> dict:
        attributes: dict = {}
        while True:
            before = self.pos
            self.skip_whitespace()
            if self.pos >= self.length:
                raise self.error("unterminated start tag")
            ch = self.source[self.pos]
            if ch in (">", "/"):
                return attributes
            if self.pos == before:
                raise self.error("expected whitespace before attribute")
            name = self.read_name()
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            if self.pos >= self.length or self.source[self.pos] not in "\"'":
                raise self.error("expected quoted attribute value")
            quote = self.source[self.pos]
            self.pos += 1
            end = self.source.find(quote, self.pos)
            if end < 0:
                raise self.error("unterminated attribute value")
            raw = self.source[self.pos : end]
            if "<" in raw:
                raise self.error("'<' not allowed in attribute value")
            if name in attributes:
                raise self.error(f"duplicate attribute {name!r}")
            attributes[name] = unescape(raw)
            self.pos = end + 1

    def parse_content(self, open_tag: str) -> List:
        children: List = []
        src = self.source
        while True:
            if self.pos >= self.length:
                raise self.error(f"unclosed element <{open_tag}>")
            next_lt = src.find("<", self.pos)
            if next_lt < 0:
                raise self.error(f"unclosed element <{open_tag}>")
            if next_lt > self.pos:
                text = src[self.pos : next_lt]
                self.pos = next_lt
                try:
                    children.append(unescape(text))
                except ValueError as exc:
                    raise self.error(str(exc)) from None
            if src.startswith("</", self.pos):
                close_start = self.pos
                self.pos += 2
                name = self.read_name()
                if name != open_tag:
                    raise self.error(
                        f"mismatched end tag </{name}> for <{open_tag}>", close_start
                    )
                self.skip_whitespace()
                self.expect(">")
                return children
            if src.startswith("<!--", self.pos):
                end = src.find("-->", self.pos + 4)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
                continue
            if src.startswith("<![CDATA[", self.pos):
                end = src.find("]]>", self.pos + 9)
                if end < 0:
                    raise self.error("unterminated CDATA section")
                children.append(src[self.pos + 9 : end])
                self.pos = end + 3
                continue
            if src.startswith("<?", self.pos):
                end = src.find("?>", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
                continue
            children.append(self.parse_element())


def parse(source: str) -> Document:
    """Parse ``source`` into a :class:`Document` with source spans.

    Raises
    ------
    XMLSyntaxError
        On any well-formedness violation, with line/column information.
    """
    return _Parser(source).parse_document()


def parse_fragment(source: str) -> Element:
    """Parse a single-element fragment and return the element itself."""
    return parse(source).root


def parse_span(source: str, span: Tuple[int, int]) -> Element:
    """Parse the fragment at ``span`` of ``source`` (used for CLOB re-parsing)."""
    start, end = span
    return parse_fragment(source[start:end])
