"""Serialization helpers: pretty printing and canonical forms.

The catalog's response builder emits compact XML (``Element.to_xml``);
this module adds the human-facing pretty printer used by the examples,
and the canonical form the round-trip tests compare with.
"""

from __future__ import annotations

from typing import List

from .escape import escape_attribute, escape_text
from .nodes import Document, Element


def pretty_print(node, indent: str = "    ") -> str:
    """Indented serialization of an :class:`Element` or :class:`Document`.

    Text children that are pure whitespace are dropped (they are assumed
    to be pre-existing indentation); mixed content with significant text
    is emitted inline so no character data is altered.
    """
    if isinstance(node, Document):
        node = node.root
    out: List[str] = []
    _pretty(node, out, indent, 0)
    return "".join(out)


def _pretty(element: Element, out: List[str], indent: str, depth: int) -> None:
    pad = indent * depth
    out.append(pad)
    out.append(f"<{element.tag}")
    for name, value in element.attributes.items():
        out.append(f' {name}="{escape_attribute(value)}"')
    meaningful = [
        c for c in element.children if isinstance(c, Element) or c.strip()
    ]
    if not meaningful:
        out.append("/>\n")
        return
    if all(isinstance(c, str) for c in meaningful):
        text = "".join(meaningful)
        out.append(f">{escape_text(text)}</{element.tag}>\n")
        return
    out.append(">\n")
    for child in meaningful:
        if isinstance(child, Element):
            _pretty(child, out, indent, depth + 1)
        else:
            out.append(indent * (depth + 1))
            out.append(escape_text(child.strip()))
            out.append("\n")
    out.append(pad)
    out.append(f"</{element.tag}>\n")


def canonical(node) -> str:
    """A whitespace-insensitive canonical serialization.

    Two documents that differ only in inter-element whitespace and
    attribute ordering canonicalize to identical strings.  Significant
    text is stripped of leading/trailing whitespace, which is the
    equality the metadata catalog guarantees (the paper's responses are
    rebuilt from CLOBs with fresh inter-element layout).
    """
    if isinstance(node, Document):
        node = node.root
    out: List[str] = []
    _canonical(node, out)
    return "".join(out)


def _canonical(element: Element, out: List[str]) -> None:
    out.append(f"<{element.tag}")
    for name in sorted(element.attributes):
        out.append(f' {name}="{escape_attribute(element.attributes[name])}"')
    out.append(">")
    for child in element.children:
        if isinstance(child, Element):
            _canonical(child, out)
        else:
            stripped = child.strip()
            if stripped:
                out.append(escape_text(stripped))
    out.append(f"</{element.tag}>")
