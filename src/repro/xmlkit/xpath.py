"""An XPath-lite evaluator over :class:`~repro.xmlkit.nodes.Element`.

The paper's §4 shows the XQuery/XPath a scientist would have to write
against a general XML store — path navigation with nested predicates —
before presenting the attribute-query API that replaces it.  This
module implements the navigational subset those examples use, so tests
can prove the equivalence and the CLOB baseline can answer general
path queries (the one thing a document store does that shredded
schemes must emulate):

* absolute and relative location paths with ``/`` (child) and ``//``
  (descendant-or-self) steps, and ``*`` wildcards;
* predicates ``[...]`` combining ``and`` / ``or``;
* predicate operands: relative paths (existence), or comparisons
  ``path op literal`` with ``= != < <= > >=``;
* literals: single/double-quoted strings and numbers (comparison is
  numeric when both sides parse as numbers, mirroring XPath's coercion
  for the equality-on-text cases the paper uses, e.g. ``attrv eq 1000``
  matching ``1000.000``).

Not supported (not needed for the era's metadata queries): axes other
than child/descendant, attribute nodes, position predicates, functions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .nodes import Element


class XPathError(ValueError):
    """Malformed XPath-lite expression."""


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

class _Step:
    __slots__ = ("name", "descendant", "predicates")

    def __init__(self, name: str, descendant: bool) -> None:
        self.name = name
        self.descendant = descendant
        self.predicates: List["_Expr"] = []


class _Path:
    __slots__ = ("steps", "absolute")

    def __init__(self, steps: List[_Step], absolute: bool) -> None:
        self.steps = steps
        self.absolute = absolute


class _Comparison:
    __slots__ = ("path", "op", "value")

    def __init__(self, path: _Path, op: Optional[str], value) -> None:
        self.path = path
        self.op = op
        self.value = value


class _Bool:
    __slots__ = ("kind", "parts")

    def __init__(self, kind: str, parts: List) -> None:
        self.kind = kind  # "and" | "or"
        self.parts = parts


_Expr = Union[_Comparison, _Bool]

_OPS = ("!=", "<=", ">=", "=", "<", ">")


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XPathError:
        return XPathError(f"{message} at offset {self.pos} in {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\n":
            self.pos += 1

    def peek(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def take(self, literal: str) -> bool:
        if self.peek(literal):
            self.pos += len(literal)
            return True
        return False

    def parse(self) -> _Path:
        path = self.parse_path(require_absolute=True)
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing content")
        return path

    def parse_path(self, require_absolute: bool = False) -> _Path:
        self.skip_ws()
        absolute = False
        descendant = False
        if self.take("//"):
            absolute = True
            descendant = True
        elif self.take("/"):
            absolute = True
        elif require_absolute:
            raise self.error("expected '/' or '//'")
        steps = [self.parse_step(descendant)]
        while True:
            if self.take("//"):
                steps.append(self.parse_step(True))
            elif self.take("/"):
                steps.append(self.parse_step(False))
            else:
                break
        return _Path(steps, absolute)

    def parse_step(self, descendant: bool) -> _Step:
        self.skip_ws()
        start = self.pos
        if self.take("*"):
            name = "*"
        else:
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] in "_-."
            ):
                self.pos += 1
            name = self.text[start:self.pos]
            if not name:
                raise self.error("expected an element name")
        step = _Step(name, descendant)
        self.skip_ws()
        while self.take("["):
            step.predicates.append(self.parse_or())
            self.skip_ws()
            if not self.take("]"):
                raise self.error("expected ']'")
            self.skip_ws()
        return step

    def parse_or(self) -> _Expr:
        parts = [self.parse_and()]
        while True:
            self.skip_ws()
            if self.take("or "):
                parts.append(self.parse_and())
            else:
                break
        return parts[0] if len(parts) == 1 else _Bool("or", parts)

    def parse_and(self) -> _Expr:
        parts = [self.parse_comparison()]
        while True:
            self.skip_ws()
            if self.take("and "):
                parts.append(self.parse_comparison())
            else:
                break
        return parts[0] if len(parts) == 1 else _Bool("and", parts)

    def parse_comparison(self) -> _Comparison:
        self.skip_ws()
        if self.take("("):
            inner = self.parse_or()
            self.skip_ws()
            if not self.take(")"):
                raise self.error("expected ')'")
            # Wrap a parenthesized boolean as a degenerate comparison.
            wrapper = _Comparison(_Path([], False), None, None)
            wrapper.path = None  # type: ignore[assignment]
            wrapper.op = "()"
            wrapper.value = inner
            return wrapper
        path = self.parse_path()
        self.skip_ws()
        for op in _OPS:
            if self.take(op):
                self.skip_ws()
                return _Comparison(path, op, self.parse_literal())
        return _Comparison(path, None, None)

    def parse_literal(self):
        self.skip_ws()
        if self.pos >= len(self.text):
            raise self.error("expected a literal")
        quote = self.text[self.pos]
        if quote in ("'", '"'):
            end = self.text.find(quote, self.pos + 1)
            if end < 0:
                raise self.error("unterminated string literal")
            value = self.text[self.pos + 1 : end]
            self.pos = end + 1
            return value
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isdigit() or self.text[self.pos] in ".-+eE"
        ):
            self.pos += 1
        token = self.text[start:self.pos]
        try:
            return float(token)
        except ValueError:
            raise self.error(f"bad literal {token!r}") from None


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def _step_candidates(context: Element, step: _Step) -> List[Element]:
    if step.descendant:
        # ``a//b``: every proper descendant of the context.
        pool = [n for n in context.iter() if n is not context]
    else:
        pool = context.child_elements()
    if step.name == "*":
        return pool
    return [n for n in pool if n.tag == step.name]


def _evaluate_steps(contexts: Sequence[Element], steps: Sequence[_Step]) -> List[Element]:
    current = list(contexts)
    for step in steps:
        next_nodes: List[Element] = []
        seen = set()
        for context in current:
            for candidate in _step_candidates(context, step):
                if id(candidate) in seen:
                    continue
                if all(_holds(predicate, candidate) for predicate in step.predicates):
                    seen.add(id(candidate))
                    next_nodes.append(candidate)
        current = next_nodes
        if not current:
            break
    return current


def _holds(expr: _Expr, context: Element) -> bool:
    if isinstance(expr, _Bool):
        if expr.kind == "and":
            return all(_holds(p, context) for p in expr.parts)
        return any(_holds(p, context) for p in expr.parts)
    if expr.op == "()":
        return _holds(expr.value, context)
    nodes = _evaluate_steps([context], expr.path.steps)
    if expr.op is None:
        return bool(nodes)
    for node in nodes:
        if _compare(node.deep_text().strip(), expr.op, expr.value):
            return True
    return False


def _compare(text: str, op: str, literal) -> bool:
    left: Union[str, float] = text
    right = literal
    if isinstance(literal, float):
        try:
            left = float(text)
        except ValueError:
            return False
    elif isinstance(literal, str):
        # Numeric coercion when both sides look numeric (the paper's
        # `attrv eq 1000` vs stored "1000.000").
        try:
            left = float(text)
            right = float(literal)
        except ValueError:
            left, right = text, literal
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def xpath(root: Element, expression: str) -> List[Element]:
    """Evaluate ``expression`` against ``root``; returns matched elements
    in document order (duplicates removed).

    The first step of an absolute path matches the root element itself
    (``/LEADresource/...`` with a ``LEADresource`` root), matching how
    the paper's examples address documents.
    """
    path = _Parser(expression).parse()
    first, rest = path.steps[0], path.steps[1:]
    if first.descendant:
        starts = [
            n
            for n in root.iter()
            if (first.name == "*" or n.tag == first.name)
            and all(_holds(p, n) for p in first.predicates)
        ]
    else:
        starts = (
            [root]
            if (first.name == "*" or root.tag == first.name)
            and all(_holds(p, root) for p in first.predicates)
            else []
        )
    return _evaluate_steps(starts, rest)


def xpath_exists(root: Element, expression: str) -> bool:
    """True when the path selects at least one element."""
    return bool(xpath(root, expression))
