"""Shared helpers for the static-analysis suite."""

from __future__ import annotations

import pathlib

from repro.analysis import Finding, run_lint
from repro.analysis.linter import Rule

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint_fixture(
    name: str,
    rule: Rule,
    fault_tests: str | None = None,
) -> list[Finding]:
    """Run one rule over the named fixture tree."""
    return run_lint(
        FIXTURES / name,
        FIXTURES / fault_tests if fault_tests else None,
        rules=[rule],
        display_base=FIXTURES,
    )
