"""Fixture: unregistered and dynamic fault sites (FLT01)."""


class BadStore:
    def save(self, row):
        self._fault("insert:unknowns")
        self.run_transaction("not_a_registered_op", lambda: None)

    def save_dynamic(self, table, row):
        self._fault(f"insert:{table}")
