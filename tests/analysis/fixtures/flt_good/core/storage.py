"""Fixture: registered literals and check_site wrapping (FLT01-clean)."""

from repro.faults.sites import check_site


class GoodStore:
    def save(self, row):
        self._fault("insert:objects")
        self.run_transaction("store_object", lambda: None)

    def save_dynamic(self, table, row):
        self._fault(check_site(f"insert:{table}"))

    def save_loop(self):
        for site in ("insert:objects",):
            self._fault(site)
