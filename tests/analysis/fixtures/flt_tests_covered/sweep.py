"""Fixture fault-sweep module: mentions every registered site."""

SITES = ["insert:objects"]
