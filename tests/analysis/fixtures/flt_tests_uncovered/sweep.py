"""Fixture fault-sweep module: exercises nothing relevant."""

SITES = ["delete:something_else"]
