"""GRD fixture: a lock-guarded routing map mutated without the lock."""

import itertools
import threading


class Router:
    def __init__(self):
        self._lock = threading.RLock()
        self._locations = {}
        self._object_ids = itertools.count(1)

    def assign(self, owner):
        with self._lock:
            object_id = next(self._object_ids)
            self._locations[object_id] = owner
        return object_id

    def evict(self, object_id):
        # GRD01: _locations is guarded (mutated under _lock in assign)
        # but this mutation runs without it.
        self._locations.pop(object_id, None)

    def location_of(self, object_id):
        # Reads stay exempt (GIL-atomic dict lookup).
        return self._locations.get(object_id)
