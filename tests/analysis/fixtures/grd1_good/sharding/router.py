"""GRD fixture: every mutation of the guarded map holds the lock."""

import itertools
import threading


class Router:
    def __init__(self):
        self._lock = threading.RLock()
        self._locations = {}
        self._object_ids = itertools.count(1)
        # __init__ may populate freely: the object is not shared yet.
        self._locations[0] = "bootstrap"

    def assign(self, owner):
        with self._lock:
            object_id = next(self._object_ids)
            self._locations[object_id] = owner
        return object_id

    def evict(self, object_id):
        with self._lock:
            self._locations.pop(object_id, None)

    def location_of(self, object_id):
        return self._locations.get(object_id)
