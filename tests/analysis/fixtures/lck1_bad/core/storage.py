"""LCK fixture: a HybridStore subclass that breaks the lock protocol."""


class _Ctx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class BadStore(HybridStore):  # noqa: F821 - resolved by name closure
    def __init__(self):
        self._objects = {}

    def read_locked(self):
        return _Ctx()

    def write_locked(self):
        return _Ctx()

    def has_object(self, object_id):
        # LCK01: read entry point, no path reaches a read acquisition.
        return object_id in self._objects

    def store_object(self, obj):
        # LCK01: write entry point, no path reaches the transaction
        # protocol.
        self._objects[obj.object_id] = obj

    def load_objects(self):
        with self.read_locked():
            with self.write_locked():
                # LCK02: read -> write upgrade on the same RWLock.
                return list(self._objects.values())
