"""LCK fixture: a sharding facade with swapped lock order and a
lock-taking scatter-gather worker."""

import threading


class _LegStore:
    def _reader(self):
        return None

    def match_objects(self, criteria):
        with self._reader() as cur:
            return cur.fetch(criteria)


class ShardedCatalog:
    def __init__(self, shards, executor):
        self._route_lock = threading.RLock()
        self._stats_lock = threading.RLock()
        self.shards = list(shards)
        self._executor = executor

    def ingest(self, document):
        with self._route_lock:
            with self._stats_lock:
                return self.shards[0].run_transaction("ingest", lambda: None)

    def delete(self, object_id):
        with self._stats_lock:
            # LCK02: opposite nesting order to ingest() -> cycle.
            with self._route_lock:
                self.shards[0].run_transaction("delete", lambda: None)

    def query(self, criteria):
        with self._route_lock:
            legs = list(range(len(self.shards)))

        def run_leg(index):
            # LCK02: worker thread takes a facade lock.
            with self._route_lock:
                return self.shards[index].match_objects(criteria)

        futures = [self._executor.submit(run_leg, index) for index in legs]
        return [future.result() for future in futures]
