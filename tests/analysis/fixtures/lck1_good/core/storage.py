"""LCK fixture: the corrected store — every entry point locks."""


class _Ctx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class GoodStore(HybridStore):  # noqa: F821 - resolved by name closure
    def __init__(self):
        self._objects = {}

    def read_locked(self):
        return _Ctx()

    def write_locked(self):
        return _Ctx()

    def run_transaction(self, label, fn):
        with self.write_locked():
            return fn()

    def has_object(self, object_id):
        with self.read_locked():
            return object_id in self._objects

    def store_object(self, obj):
        def write():
            self._objects[obj.object_id] = obj

        return self.run_transaction("store_object", write)

    def load_objects(self):
        with self.read_locked():
            return list(self._objects.values())
