"""LCK fixture: the corrected facade — one global lock order and
lock-free scatter-gather workers."""

import threading


class _LegStore:
    def _reader(self):
        return None

    def match_objects(self, criteria):
        with self._reader() as cur:
            return cur.fetch(criteria)


class ShardedCatalog:
    def __init__(self, shards, executor):
        self._route_lock = threading.RLock()
        self._stats_lock = threading.RLock()
        self.shards = list(shards)
        self._executor = executor

    def ingest(self, document):
        with self._route_lock:
            with self._stats_lock:
                return self.shards[0].run_transaction("ingest", lambda: None)

    def delete(self, object_id):
        # Same nesting order as ingest(): route before stats.
        with self._route_lock:
            with self._stats_lock:
                self.shards[0].run_transaction("delete", lambda: None)

    def query(self, criteria):
        with self._route_lock:
            legs = list(range(len(self.shards)))

        def run_leg(index):
            # Lock-free: works from the snapshot taken above.
            return self.shards[index].match_objects(criteria)

        futures = [self._executor.submit(run_leg, index) for index in legs]
        return [future.result() for future in futures]
