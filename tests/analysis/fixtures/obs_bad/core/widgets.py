"""Fixture: every OBS01 failure mode."""


class Widgets:
    def count_one(self, registry):
        registry.counter("widgets_total", "widgets made").inc()

    def count_again(self, registry):
        # Second creation call site for the same name.
        registry.counter("widgets_total", "widgets made, restated").inc()

    def undeclared(self, registry):
        registry.counter("surprises_total", "never declared").inc()

    def bad_suffix(self, registry):
        registry.counter("widget_count", "counter without _total").inc()

    def wrong_kind(self, registry):
        # queue_depth is declared as a gauge.
        registry.counter("queue_depth_total", "declared gauge").inc()

    def wrong_labels(self, registry):
        registry.histogram(
            "latency_seconds", "declared with ('op',)", labels=("queue",)
        ).observe(1.0)

    def dynamic(self, registry, name):
        registry.counter(name, "no spec() resolution in sight").inc()


class WidgetEvents:
    def undeclared_event(self, log):
        log.emit("surprise_event", detail="never declared")

    def undeclared_field(self, log):
        # widget_made declares only ("count",).
        log.emit("widget_made", color="red")

    def dynamic_event(self, log, name):
        log.emit(name, count=1)  # no event_spec() resolution in sight

    def undeclared_series(self, series_spec):
        return series_spec("surprise_series")
