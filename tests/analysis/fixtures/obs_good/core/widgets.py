"""Fixture: OBS01-clean metric creation."""

from repro.obs.names import spec


class Widgets:
    def count(self, registry):
        registry.counter("widgets_total", "widgets made").inc()

    def depth(self, registry):
        registry.gauge("queue_depth", "queued widgets").set(0)

    def timing(self, registry):
        registry.histogram(
            "latency_seconds", "widget latency", labels=("op",)
        ).observe(1.0)

    def dynamic(self, registry, name):
        declared = spec(name)
        registry.counter(name, declared.help, labels=declared.labels).inc()


from repro.obs.names import event_spec, series_spec


class WidgetEvents:
    def made(self, log):
        log.emit("widget_made", count=2)

    def dynamic(self, log, name, **fields):
        declared = event_spec(name)
        assert set(fields) <= set(declared.fields)
        log.emit(name, **fields)

    def qps(self):
        return series_spec("widget_qps")

    def made_again(self, log):
        # A second emit site for the same event is fine (unlike metric
        # creation, emission is not registration).
        log.emit("widget_made", count=1)
