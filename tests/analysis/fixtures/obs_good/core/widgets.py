"""Fixture: OBS01-clean metric creation."""

from repro.obs.names import spec


class Widgets:
    def count(self, registry):
        registry.counter("widgets_total", "widgets made").inc()

    def depth(self, registry):
        registry.gauge("queue_depth", "queued widgets").set(0)

    def timing(self, registry):
        registry.histogram(
            "latency_seconds", "widget latency", labels=("op",)
        ).observe(1.0)

    def dynamic(self, registry, name):
        declared = spec(name)
        registry.counter(name, declared.help, labels=declared.labels).inc()
