"""Fixture: sqlite side of the PAR01 drift."""

from ..core.storage import HybridStore


class SqliteHybridStore(HybridStore):
    def store_object(self, shred):
        pass

    def delete_object(self, object_id):
        pass

    def checkpoint(self):
        """Public method absent from the base interface."""
