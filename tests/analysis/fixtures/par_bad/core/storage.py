"""Fixture: backend interface drift (PAR01)."""

import abc


class HybridStore(abc.ABC):
    @abc.abstractmethod
    def store_object(self, shred):
        ...

    @abc.abstractmethod
    def delete_object(self, object_id):
        ...

    def close(self):
        pass


class MemoryHybridStore(HybridStore):
    def store_object(self, shred):
        pass

    # delete_object is missing — abstract method not overridden.

    def vacuum(self):
        """Public method that exists on no other backend."""
