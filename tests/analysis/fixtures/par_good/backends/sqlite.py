"""Fixture: sqlite side of the PAR01-clean pair."""

from ..core.storage import HybridStore


class SqliteHybridStore(HybridStore):
    def store_object(self, shred):
        pass

    def delete_object(self, object_id):
        pass

    def close(self):
        self.connection.close()

    def _statement_site(self, sql):
        """Private helpers may differ per backend."""
