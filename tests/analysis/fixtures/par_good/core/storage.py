"""Fixture: both backends match the base interface (PAR01-clean)."""

import abc


class HybridStore(abc.ABC):
    @abc.abstractmethod
    def store_object(self, shred):
        ...

    @abc.abstractmethod
    def delete_object(self, object_id):
        ...

    def close(self):
        pass


class MemoryHybridStore(HybridStore):
    def store_object(self, shred):
        pass

    def delete_object(self, object_id):
        pass

    def _journal(self):
        """Private helpers may differ per backend."""
