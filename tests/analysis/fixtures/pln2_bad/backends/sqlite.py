"""Fixture: sqlite executor whose declaration drifted from the IR —
one kind missing, one kind that no longer exists."""

HANDLED_STAGE_KINDS = ("element-seek", "full-scan")
