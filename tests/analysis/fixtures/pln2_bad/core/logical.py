"""Fixture: stage IR whose kinds the executors fail to mirror."""


class BadSeek:
    kind = "element-seek"

    __slots__ = ("qelem_id",)

    def __init__(self, qelem_id):
        self.qelem_id = qelem_id


class BadIntersect:
    kind = "object-intersect"

    __slots__ = ("arity",)

    def __init__(self, arity):
        self.arity = arity
