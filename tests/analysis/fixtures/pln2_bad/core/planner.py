"""Fixture: memory executor with no stage-surface declaration at all."""


def match_objects(plan):
    return []
