"""Fixture: sqlite executor mirroring the memory declaration."""

HANDLED_STAGE_KINDS = ("object-intersect", "element-seek")
