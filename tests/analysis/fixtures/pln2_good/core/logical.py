"""Fixture: stage IR whose kinds both executors mirror (PLN02-clean)."""


class GoodSeek:
    kind = "element-seek"

    __slots__ = ("qelem_id", "op", "est_rows")

    def __init__(self, qelem_id, op, est_rows):
        self.qelem_id = qelem_id
        self.op = op
        self.est_rows = est_rows


class GoodIntersect:
    kind = "object-intersect"

    __slots__ = ("arity",)

    def __init__(self, arity):
        self.arity = arity
