"""Fixture: memory executor declaring the full stage surface."""

HANDLED_STAGE_KINDS = ("element-seek", "object-intersect")
