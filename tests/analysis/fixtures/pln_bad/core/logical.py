"""Fixture: plan stages that smuggle comparison literals (PLN01)."""


class BadSeek:
    kind = "element-seek"

    __slots__ = ("qelem_id", "value_text")

    def __init__(self, qelem_id, value_text):
        self.qelem_id = qelem_id
        self.value_text = value_text
        self.op = 3


class NotAStage:
    """No ``kind`` marker: the rule must leave this class alone."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value
