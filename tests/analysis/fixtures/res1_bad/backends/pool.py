"""RES fixture: pooled connections that leak on some path."""

from contextlib import contextmanager


class Pool:
    def _acquire(self):
        return object()

    def _release(self, conn):
        pass

    def lease(self):
        # RES01: bound to a local, never returned/stored/released.
        conn = self._acquire()
        conn.ping()
        return True

    def warm(self):
        # RES01: result discarded outright.
        self._acquire()

    @contextmanager
    def connection(self):
        # RES01: yield is not a transfer — the generator still owns the
        # connection and an exception in the body leaks it.
        conn = self._acquire()
        yield conn
