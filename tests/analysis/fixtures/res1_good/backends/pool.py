"""RES fixture: every acquisition is discharged by an ownership idiom."""

from contextlib import contextmanager


class Pool:
    def _acquire(self):
        return object()

    def _release(self, conn):
        pass

    def checkout(self):
        # Transfer to the caller.
        return self._acquire()

    def attach(self):
        # Transfer to the object.
        self._conn = self._acquire()

    def ping(self):
        # Structural release via with.
        with self._acquire() as conn:
            conn.ping()

    @contextmanager
    def connection(self):
        conn = self._acquire()
        try:
            yield conn
        finally:
            self._release(conn)
