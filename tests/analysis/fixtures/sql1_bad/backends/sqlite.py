"""SQL fixture: every interpolation shape the rule must flag."""


def delete_rows(cur, table, object_id):
    # f-string hole with no quote_identifier in sight.
    cur.execute(f"DELETE FROM {table} WHERE object_id = {object_id}")


def count_rows(cur, table):
    # + concatenation into a verb-headed string.
    return cur.execute("SELECT COUNT(*) FROM " + table).fetchone()[0]


def format_rows(cur, table):
    # str.format into SQL.
    return cur.execute("SELECT * FROM {}".format(table))


def percent_rows(cur, table):
    # %-formatting into SQL.
    return cur.execute("SELECT * FROM %s" % table)


def dynamic_head(cur, verb):
    # The statement opens with a dynamic fragment: unauditable.
    cur.execute(f"{verb} FROM objects")


def launder(cur, table):
    # Binding a parameter to a new name does not sanction it.
    name = table
    cur.execute(f"SELECT COUNT(*) FROM {name}")
