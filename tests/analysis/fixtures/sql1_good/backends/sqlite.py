"""SQL fixture: the sanctioned shapes — quote_identifier holes,
? parameters, closures over validated names, non-SQL strings."""

from repro.identifiers import quote_identifier


def delete_rows(cur, table, object_id):
    cur.execute(
        f"DELETE FROM {quote_identifier(table)} WHERE object_id = ?",
        (object_id,),
    )


def insert_scratch(cur, suffix):
    qm = quote_identifier(f"q_matches_{suffix}")
    cur.execute(f"CREATE TEMP TABLE {qm} (object_id INTEGER)")

    def write():
        # Closures inherit the sanctioned binding from the enclosing
        # scope.
        cur.execute(f"INSERT INTO {qm} VALUES (?)", (1,))

    write()
    cur.execute(f"DROP TABLE {qm}")


def fault_site(table):
    # Lowercase head: a fault-site label, not SQL.
    return f"insert:{table}"


def static_sql(cur):
    cur.execute("SELECT COUNT(*) FROM objects")
