"""Fixture: catalog mutations outside any transaction (TXN01)."""


class BadStore:
    def save(self, row):
        # Engine mutation with no transaction context.
        self.db.table("objects").insert(row)

    def wipe(self):
        # SQL mutation with no transaction context.
        self.conn.execute("DELETE FROM objects")

    def waived(self, row):
        self.db.table("objects").insert(row)  # reprolint: ignore[TXN01] fixture waiver
