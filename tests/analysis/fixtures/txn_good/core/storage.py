"""Fixture: every mutation is transaction-bracketed (TXN01-clean)."""


class GoodStore:
    def save(self, row):
        def write():
            self._append(row)

        self.run_transaction("store_object", write)

    def save_inline(self, row):
        self.run_transaction(
            "store_object", lambda: self.db.table("objects").insert(row)
        )

    def save_block(self, row):
        with self.transaction("store_object"):
            self.db.table("objects").insert(row)

    def _append(self, row):
        # Reached only through run_transaction callers: txn-only helper.
        self.db.table("objects").insert(row)
        self.conn.execute("INSERT INTO objects VALUES (?)", row)

    def read_all(self):
        # Reads never need a transaction.
        return self.conn.execute("SELECT * FROM objects").fetchall()
