"""``repro lint`` CLI contract: exit codes, ``--json``, ``--rule``."""

import json
import pathlib

import pytest

from repro.analysis import parse_json_report
from repro.cli import main

from .conftest import FIXTURES

REPO_FAULT_TESTS = pathlib.Path(__file__).parents[1] / "faults"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        # The shipped package must lint clean (the acceptance gate).
        code = main(["lint", "--fault-tests", str(REPO_FAULT_TESTS)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, capsys):
        code = main(["lint", "--src", str(FIXTURES / "txn_bad")])
        assert code == 1
        assert "TXN01" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", "--rule", "NOPE99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule id" in err
        assert "TXN01" in err  # known ids are listed

    def test_missing_src_exits_two(self, capsys):
        code = main(["lint", "--src", str(FIXTURES / "no_such_tree")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_bad_flag_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--not-a-flag"])
        assert exc.value.code == 2


class TestJsonOutput:
    def test_schema_round_trips(self, capsys):
        code = main(
            ["lint", "--json", "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/v1"
        findings = parse_json_report(json.dumps(payload))
        assert payload["counts"]["total"] == len(findings)
        assert payload["counts"]["active"] == sum(
            1 for f in findings if not f.suppressed
        )
        assert all(f.rule_id == "TXN01" for f in findings)

    def test_suppressed_findings_survive_json(self, capsys):
        main(["lint", "--json", "--src", str(FIXTURES / "txn_bad")])
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["suppressed"] for entry in payload["findings"])


class TestRuleFiltering:
    def test_filter_isolates_one_rule(self, capsys):
        code = main(
            ["lint", "--json", "--rule", "TXN01",
             "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload["findings"]} == {"TXN01"}

    def test_filtered_out_violations_pass(self, capsys):
        # txn_bad has TXN01 violations only; under FLT01 it is clean.
        code = main(
            ["lint", "--rule", "FLT01", "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_rule_flag_repeats(self, capsys):
        code = main(
            ["lint", "--json", "--rule", "TXN01", "--rule", "FLT01",
             "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload["findings"]} == {"TXN01"}
