"""``repro lint`` CLI contract: exit codes, ``--json``, ``--rule``."""

import json
import pathlib

import pytest

from repro.analysis import parse_json_report
from repro.cli import main

from .conftest import FIXTURES

REPO_FAULT_TESTS = pathlib.Path(__file__).parents[1] / "faults"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        # The shipped package must lint clean (the acceptance gate).
        code = main(["lint", "--fault-tests", str(REPO_FAULT_TESTS)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, capsys):
        code = main(["lint", "--src", str(FIXTURES / "txn_bad")])
        assert code == 1
        assert "TXN01" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", "--rule", "NOPE99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule id" in err
        assert "TXN01" in err  # known ids are listed

    def test_missing_src_exits_two(self, capsys):
        code = main(["lint", "--src", str(FIXTURES / "no_such_tree")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_bad_flag_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--not-a-flag"])
        assert exc.value.code == 2


class TestJsonOutput:
    def test_schema_round_trips(self, capsys):
        code = main(
            ["lint", "--json", "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/v1"
        findings = parse_json_report(json.dumps(payload))
        assert payload["counts"]["total"] == len(findings)
        assert payload["counts"]["active"] == sum(
            1 for f in findings if not f.suppressed
        )
        assert all(f.rule_id == "TXN01" for f in findings)

    def test_suppressed_findings_survive_json(self, capsys):
        main(["lint", "--json", "--src", str(FIXTURES / "txn_bad")])
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["suppressed"] for entry in payload["findings"])


class TestRuleFiltering:
    def test_filter_isolates_one_rule(self, capsys):
        code = main(
            ["lint", "--json", "--rule", "TXN01",
             "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload["findings"]} == {"TXN01"}

    def test_filtered_out_violations_pass(self, capsys):
        # txn_bad has TXN01 violations only; under FLT01 it is clean.
        code = main(
            ["lint", "--rule", "FLT01", "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_rule_flag_repeats(self, capsys):
        code = main(
            ["lint", "--json", "--rule", "TXN01", "--rule", "FLT01",
             "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload["findings"]} == {"TXN01"}


class TestSarifOutput:
    def test_sarif_is_valid_2_1_0(self, capsys):
        code = main(
            ["lint", "--sarif", "--no-cache",
             "--src", str(FIXTURES / "txn_bad")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert "TXN01" in {rule["id"] for rule in driver["rules"]}
        assert all(r["ruleId"] == "TXN01" for r in run["results"])

    def test_suppressed_findings_become_suppressions(self, capsys):
        main(
            ["lint", "--sarif", "--no-cache",
             "--src", str(FIXTURES / "txn_bad")]
        )
        payload = json.loads(capsys.readouterr().out)
        results = payload["runs"][0]["results"]
        suppressed = [r for r in results if "suppressions" in r]
        assert len(suppressed) == 1
        assert suppressed[0]["suppressions"][0]["kind"] == "inSource"
        # Active findings carry no suppressions key at all.
        assert all(
            "suppressions" not in r for r in results if r not in suppressed
        )


class TestFindingsCache:
    def copy_fixture(self, tmp_path):
        import shutil

        tree = tmp_path / "tree"
        shutil.copytree(FIXTURES / "txn_bad", tree)
        return tree, tmp_path / "cache"

    def test_warm_run_replays_the_stored_entry(self, tmp_path, capsys):
        tree, cache_dir = self.copy_fixture(tmp_path)
        argv = ["lint", "--json", "--src", str(tree),
                "--cache-dir", str(cache_dir)]
        assert main(argv) == 1
        cold = capsys.readouterr().out
        entries = list(cache_dir.glob("*.json"))
        assert len(entries) == 1
        # Tamper with the stored findings: if the warm run replays the
        # cache (rather than re-linting), the tampered text shows up.
        payload = json.loads(entries[0].read_text())
        payload["findings"][0]["message"] = "replayed-from-cache"
        entries[0].write_text(json.dumps(payload))
        assert main(argv) == 1
        warm = capsys.readouterr().out
        assert warm != cold
        assert "replayed-from-cache" in warm

    def test_source_edit_invalidates_the_key(self, tmp_path, capsys):
        tree, cache_dir = self.copy_fixture(tmp_path)
        argv = ["lint", "--json", "--src", str(tree),
                "--cache-dir", str(cache_dir)]
        assert main(argv) == 1
        capsys.readouterr()
        target = tree / "core" / "storage.py"
        target.write_text(target.read_text() + "\n# touched\n")
        assert main(argv) == 1
        capsys.readouterr()
        # A different content digest means a second entry, not a reuse.
        assert len(list(cache_dir.glob("*.json"))) == 2

    def test_no_cache_writes_nothing(self, tmp_path, capsys):
        tree, cache_dir = self.copy_fixture(tmp_path)
        assert main(
            ["lint", "--json", "--no-cache", "--src", str(tree),
             "--cache-dir", str(cache_dir)]
        ) == 1
        capsys.readouterr()
        assert not cache_dir.exists()


class TestSyntaxErrorExit:
    def test_broken_file_exits_two_without_traceback(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "broken.py").write_text("def f(:\n")
        code = main(["lint", "--no-cache", "--src", str(tree)])
        assert code == 2
        captured = capsys.readouterr()
        assert "PARSE" in captured.out
        assert "Traceback" not in captured.out + captured.err


class TestChangedScope:
    def make_repo(self, tmp_path, monkeypatch):
        import shutil
        import subprocess

        if shutil.which("git") is None:
            pytest.skip("git not available")
        repo = tmp_path / "proj"
        shutil.copytree(FIXTURES / "txn_bad", repo / "tree")
        monkeypatch.chdir(repo)
        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run(["git", "init", "-q"], check=True)
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(git + ["commit", "-q", "-m", "seed"], check=True)
        return repo

    def test_clean_checkout_reports_nothing(self, tmp_path, monkeypatch,
                                            capsys):
        repo = self.make_repo(tmp_path, monkeypatch)
        code = main(
            ["lint", "--changed", "--json", "--src", str(repo / "tree")]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["active"] == 0

    def test_touched_file_comes_back_into_scope(self, tmp_path, monkeypatch,
                                                capsys):
        repo = self.make_repo(tmp_path, monkeypatch)
        target = repo / "tree" / "core" / "storage.py"
        target.write_text(target.read_text() + "\n# touched\n")
        code = main(
            ["lint", "--changed", "--json", "--src", str(repo / "tree")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["active"] > 0
        assert {e["path"] for e in payload["findings"]} == {
            "tree/core/storage.py"
        }

    def test_outside_a_checkout_exits_two(self, tmp_path, monkeypatch,
                                          capsys):
        import shutil

        if shutil.which("git") is None:
            pytest.skip("git not available")
        tree = tmp_path / "tree"
        shutil.copytree(FIXTURES / "txn_bad", tree)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        code = main(["lint", "--changed", "--src", str(tree)])
        assert code == 2
        assert "--changed requires a git checkout" in capsys.readouterr().err
