"""The rule engine itself: pragma parsing, reporters, and the
structured-finding round trip."""

import ast

from repro.analysis import (
    Finding,
    Severity,
    active,
    parse_json_report,
    render_json_report,
    render_text_report,
    run_lint,
)
from repro.analysis.linter import (
    SourceModule,
    call_name,
    local_str_values,
    parse_pragmas,
    str_prefix,
)
from repro.analysis.rules import LockReachabilityRule, SqlSafetyRule, TxnSafetyRule

from .conftest import FIXTURES, lint_fixture


class TestPragmas:
    def test_bracketed_rules(self):
        pragmas = parse_pragmas(
            "x = 1\ny = 2  # reprolint: ignore[TXN01, FLT01]\n"
        )
        assert pragmas == {2: {"TXN01", "FLT01"}}

    def test_bare_ignore_waives_everything(self):
        pragmas = parse_pragmas("z = 3  # reprolint: ignore\n")
        assert pragmas == {1: {"*"}}

    def test_unrelated_comments_ignored(self):
        assert parse_pragmas("a = 1  # TODO: reconsider\n") == {}

    def test_pragma_on_closing_line_of_wrapped_statement(self, tmp_path):
        # The finding anchors on the statement's first line; the pragma
        # sits on the closing paren three lines down.  Both must meet.
        target = tmp_path / "backends" / "sqlite.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "def scan(cur, table):\n"
            "    return cur.execute(\n"
            '        f"SELECT * FROM {table}"\n'
            "    )  # reprolint: ignore[SQL01]\n"
        )
        findings = run_lint(tmp_path, rules=[SqlSafetyRule()])
        assert len(findings) == 1
        assert findings[0].suppressed
        assert active(findings) == []

    def test_pragma_on_decorator_line_covers_the_def(self, tmp_path):
        # LCK01 reports on the `def` line, but the reader's waiver sits
        # on the decorator above it.
        target = tmp_path / "core" / "storage.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "class LocklessStore(HybridStore):  # noqa: F821\n"
            "    @staticmethod  # reprolint: ignore[LCK01]\n"
            "    def has_object(object_id):\n"
            "        return len(str(object_id)) > 0\n"
        )
        findings = run_lint(tmp_path, rules=[LockReachabilityRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "LCK01"
        assert findings[0].suppressed
        assert active(findings) == []


class TestEngine:
    def test_syntax_error_yields_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = run_lint(tmp_path, rules=[])
        assert len(findings) == 1
        assert findings[0].rule_id == "PARSE"
        assert "does not parse" in findings[0].message

    def test_findings_are_sorted_by_location(self):
        findings = lint_fixture("txn_bad", TxnSafetyRule())
        keys = [f.sort_key() for f in findings]
        assert keys == sorted(keys)

    def test_source_module_suffix_matching(self):
        module = SourceModule(
            FIXTURES / "txn_bad" / "core" / "storage.py", "core/storage.py"
        )
        assert module.endswith("core/storage.py")
        assert not module.endswith("backends/sqlite.py")


class TestHelpers:
    def test_call_name_handles_attributes(self):
        call = ast.parse("self.db.insert(x)").body[0].value
        assert call_name(call) == "insert"

    def test_str_prefix_reads_fstring_head(self):
        node = ast.parse('f"DELETE FROM {t}"').body[0].value
        assert str_prefix(node) == "DELETE FROM "

    def test_local_str_values_resolves_loops_and_assigns(self):
        scope = ast.parse(
            "def f():\n"
            "    a = 'x'\n"
            "    for b in ('y', 'z'):\n"
            "        pass\n"
        ).body[0]
        assert local_str_values(scope, "a") == ["x"]
        assert sorted(local_str_values(scope, "b")) == ["y", "z"]
        assert local_str_values(scope, "missing") is None


class TestReporters:
    def test_text_report_marks_suppressions(self):
        findings = lint_fixture("txn_bad", TxnSafetyRule())
        text = render_text_report(findings)
        assert "(suppressed)" in text
        assert text.endswith("2 finding(s), 1 suppressed")

    def test_json_schema_and_counts(self):
        import json

        findings = lint_fixture("txn_bad", TxnSafetyRule())
        payload = json.loads(render_json_report(findings))
        assert payload["schema"] == "repro.lint/v1"
        assert payload["counts"] == {"total": 3, "active": 2, "suppressed": 1}
        assert all(
            set(entry) == {"rule", "path", "line", "severity", "message",
                           "suppressed"}
            for entry in payload["findings"]
        )

    def test_json_round_trip(self):
        findings = lint_fixture("txn_bad", TxnSafetyRule())
        assert parse_json_report(render_json_report(findings)) == findings


class TestFindings:
    def test_active_excludes_suppressed_and_warnings(self):
        findings = [
            Finding("X01", "a.py", 1, "live"),
            Finding("X01", "a.py", 2, "waived", suppressed=True),
            Finding("X01", "a.py", 3, "advisory", severity=Severity.WARNING),
        ]
        assert [f.message for f in active(findings)] == ["live"]

    def test_dict_round_trip(self):
        finding = Finding("TXN01", "core/storage.py", 7, "boom",
                          suppressed=True)
        assert Finding.from_dict(finding.as_dict()) == finding
