"""The whole-program model: indexes, resolution, closures, and the
shared fact solvers."""

import ast

from repro.analysis.callgraph import CallGraph, lexical_acquisitions
from repro.analysis.facts import find_cycle, greatest_fixpoint, transitive_edges
from repro.analysis.linter import load_modules
from repro.analysis.program import build_program


def make_program(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return build_program(load_modules(tmp_path, display_base=tmp_path))


class TestProgramModel:
    def test_qualified_names_and_indexes(self, tmp_path):
        program = make_program(tmp_path, {
            "core/storage.py": (
                "def helper():\n"
                "    def inner():\n"
                "        pass\n"
                "class Store:\n"
                "    def save(self):\n"
                "        pass\n"
            ),
        })
        names = set(program.functions)
        assert "core/storage.py::helper" in names
        assert "core/storage.py::helper::inner" in names
        assert "core/storage.py::Store.save" in names
        helper = program.functions["core/storage.py::helper"]
        inner = program.functions["core/storage.py::helper::inner"]
        assert inner.parent is helper
        assert program.children[helper] == [inner]
        assert [f.qualname for f in program.by_name["save"]] == [
            "core/storage.py::Store.save"
        ]

    def test_subclasses_include_unresolved_bases(self, tmp_path):
        # Fixture trees subclass HybridStore without shipping it; the
        # name closure must still match them.
        program = make_program(tmp_path, {
            "a.py": (
                "class Child(HybridStore):\n"
                "    pass\n"
                "class GrandChild(Child):\n"
                "    pass\n"
                "class Unrelated:\n"
                "    pass\n"
            ),
        })
        found = {c.name for c in program.subclasses_of("HybridStore")}
        assert found == {"Child", "GrandChild"}

    def test_resolve_method_walks_bases(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "class Base:\n"
                "    def ping(self):\n"
                "        pass\n"
                "class Child(Base):\n"
                "    pass\n"
            ),
        })
        child = program.classes["Child"][0]
        resolved = program.resolve_method(child, "ping")
        assert resolved is not None
        assert resolved.qualname == "a.py::Base.ping"

    def test_is_abstract_detects_stub_bodies(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "class C:\n"
                "    def a(self): ...\n"
                "    def b(self):\n"
                "        raise NotImplementedError\n"
                "    def c(self):\n"
                "        return True\n"
                "    def d(self):\n"
                "        return self.a()\n"
            ),
        })
        cls = program.classes["C"][0]
        assert cls.methods["a"].is_abstract()
        assert cls.methods["b"].is_abstract()
        assert cls.methods["c"].is_abstract()
        assert not cls.methods["d"].is_abstract()

    def test_iter_calls_excludes_nested_defs(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "def outer():\n"
                "    first()\n"
                "    def inner():\n"
                "        second()\n"
                "    return inner\n"
            ),
        })
        outer = program.functions["a.py::outer"]
        inner = program.functions["a.py::outer::inner"]
        outer_names = {c.func.id for c in program.iter_calls(outer)}
        inner_names = {c.func.id for c in program.iter_calls(inner)}
        assert outer_names == {"first"}
        assert inner_names == {"second"}


class TestResolution:
    def test_precise_self_call_uses_class_hierarchy(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "class Base:\n"
                "    def step(self):\n"
                "        pass\n"
                "    def run(self):\n"
                "        self.step()\n"
                "class Child(Base):\n"
                "    def step(self):\n"
                "        pass\n"
            ),
        })
        run = program.functions["a.py::Base.run"]
        call = next(program.iter_calls(run))
        targets = {f.qualname for f in program.resolve_call(run, call)}
        # Virtual dispatch: the base method plus the subclass override.
        assert targets == {"a.py::Base.step", "a.py::Child.step"}

    def test_precise_attribute_call_resolves_nothing(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "def go(store):\n"
                "    store.save()\n"
                "class Other:\n"
                "    def save(self):\n"
                "        pass\n"
            ),
        })
        go = program.functions["a.py::go"]
        call = next(program.iter_calls(go))
        assert program.resolve_call(go, call) == []
        optimistic = program.resolve_call(go, call, optimistic=True)
        assert [f.qualname for f in optimistic] == ["a.py::Other.save"]

    def test_bare_name_resolves_import_then_module(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "from b import helper\n"
                "def go():\n"
                "    helper()\n"
            ),
            "b.py": (
                "def helper():\n"
                "    pass\n"
            ),
        })
        go = program.functions["a.py::go"]
        call = next(program.iter_calls(go))
        assert [f.qualname for f in program.resolve_call(go, call)] == [
            "b.py::helper"
        ]


class TestCallGraph:
    def test_lock_tokens_unify_across_inheritance(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "class Store:\n"
                "    def read_locked(self):\n"
                "        pass\n"
                "    def write_locked(self):\n"
                "        pass\n"
                "class Memory(Store):\n"
                "    def load(self):\n"
                "        with self.read_locked():\n"
                "            pass\n"
                "    def save(self):\n"
                "        with self.write_locked():\n"
                "            pass\n"
            ),
        })
        load = program.functions["a.py::Memory.load"]
        save = program.functions["a.py::Memory.save"]
        load_acqs = lexical_acquisitions(program, load)
        save_acqs = lexical_acquisitions(program, save)
        # Both tokens name the defining class, not the subclass.
        assert [(a.token, a.write) for a in load_acqs] == [
            ("Store.rwlock", False)
        ]
        assert [(a.token, a.write) for a in save_acqs] == [
            ("Store.rwlock", True)
        ]

    def test_context_expr_is_not_inside_the_acquisition(self, tmp_path):
        # `with self._rwlock().read_locked():` evaluates _rwlock()
        # BEFORE the lock is taken; only the body is protected.
        program = make_program(tmp_path, {
            "a.py": (
                "import threading\n"
                "class Store:\n"
                "    def read_locked(self):\n"
                "        pass\n"
                "    def load(self):\n"
                "        with self.read_locked():\n"
                "            inner()\n"
            ),
        })
        load = program.functions["a.py::Store.load"]
        (acq,) = lexical_acquisitions(program, load)
        bodies = {type(stmt).__name__ for stmt in acq.body}
        assert bodies == {"Expr"}

    def test_reachable_call_names_closes_over_nested_defs(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "class Store:\n"
                "    def run_transaction(self, label, fn):\n"
                "        pass\n"
                "    def save(self):\n"
                "        def write():\n"
                "            self.flush()\n"
                "        return self.run_transaction('save', write)\n"
                "    def flush(self):\n"
                "        pass\n"
            ),
        })
        graph = CallGraph(program)
        save = program.functions["a.py::Store.save"]
        reached = graph.reachable_call_names(save)
        assert {"run_transaction", "flush"} <= reached

    def test_may_acquire_is_transitive_and_precise(self, tmp_path):
        program = make_program(tmp_path, {
            "a.py": (
                "import threading\n"
                "class C:\n"
                "    def leaf(self):\n"
                "        with self._lock:\n"
                "            pass\n"
                "    def mid(self):\n"
                "        self.leaf()\n"
                "    def top(self):\n"
                "        self.mid()\n"
                "    def other(self, thing):\n"
                "        thing.leaf()\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
            ),
        })
        graph = CallGraph(program)
        top = program.functions["a.py::C.top"]
        other = program.functions["a.py::C.other"]
        assert graph.may_acquire(top) == {("C._lock", True)}
        # Unresolved attribute calls contribute nothing (precision).
        assert graph.may_acquire(other) == set()


class TestFacts:
    def test_greatest_fixpoint_drops_dependents(self):
        # b holds only while a holds; a never holds.
        deps = {"a": {"missing"}, "b": {"a"}, "c": set()}
        result = greatest_fixpoint(
            set(deps),
            lambda item, others: deps[item] <= others | {"c"},
        )
        assert result == {"c"}

    def test_transitive_edges(self):
        closed = transitive_edges({"a": {"b"}, "b": {"c"}})
        assert closed["a"] == {"b", "c"}

    def test_find_cycle(self):
        assert find_cycle({"a": {"b"}, "b": {"c"}}) == ()
        cycle = find_cycle({"a": {"b"}, "b": {"a"}})
        assert cycle and cycle[0] == cycle[-1]
