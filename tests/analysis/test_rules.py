"""Each rule flags its seeded fixture violations and passes the
corrected fixture — the acceptance contract for ``repro lint``."""

from repro.analysis import active
from repro.analysis.rules import (
    BackendParityRule,
    FaultSiteRule,
    GuardedFieldRule,
    LockOrderRule,
    LockReachabilityRule,
    MetricNameRule,
    PlanPurityRule,
    ResourceLifecycleRule,
    SqlSafetyRule,
    StageSurfaceRule,
    TxnSafetyRule,
)
from repro.obs.names import EventSpec, MetricSpec, SeriesSpec

from .conftest import lint_fixture


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestTxnSafety:
    def test_flags_unbracketed_mutations(self):
        findings = lint_fixture("txn_bad", TxnSafetyRule())
        live = active(findings)
        assert len(live) == 2
        assert {f.line for f in live} == {7, 11}
        assert all(f.rule_id == "TXN01" for f in live)
        assert any("insert" in f.message for f in live)
        assert any("execute" in f.message for f in live)

    def test_pragma_waives_but_stays_in_report(self):
        findings = lint_fixture("txn_bad", TxnSafetyRule())
        suppressed = [f for f in findings if f.suppressed]
        assert len(suppressed) == 1
        assert suppressed[0].line == 14

    def test_clean_fixture_passes(self):
        assert lint_fixture("txn_good", TxnSafetyRule()) == []

    def test_txn_only_helper_is_safe(self):
        # _append mutates but is only reachable via run_transaction
        # callers — the fixpoint must classify it as transaction-only.
        findings = lint_fixture("txn_good", TxnSafetyRule())
        assert not [f for f in findings if "_append" in f.message]


class TestFaultSites:
    def rule(self):
        return FaultSiteRule(
            statement_sites=frozenset({"insert:objects"}),
            transaction_sites=frozenset({"store_object"}),
        )

    def test_flags_unregistered_and_dynamic_sites(self):
        findings = lint_fixture("flt_bad", self.rule())
        assert len(findings) == 3
        messages = " | ".join(f.message for f in findings)
        assert "insert:unknowns" in messages
        assert "not_a_registered_op" in messages
        assert "dynamic fault site" in messages

    def test_clean_fixture_passes_with_coverage(self):
        findings = lint_fixture(
            "flt_good", self.rule(), fault_tests="flt_tests_covered"
        )
        assert findings == []

    def test_uncovered_site_is_flagged(self):
        findings = lint_fixture(
            "flt_good", self.rule(), fault_tests="flt_tests_uncovered"
        )
        assert len(findings) == 1
        assert "insert:objects" in findings[0].message
        assert "not exercised" in findings[0].message

    def test_coverage_skipped_without_test_tree(self):
        # Fixture runs without a tests/faults view must not drown in
        # coverage findings.
        assert lint_fixture("flt_good", self.rule()) == []


class TestMetricNames:
    REGISTRY = {
        s.name: s
        for s in (
            MetricSpec("widgets_total", "counter", "widgets made"),
            MetricSpec("queue_depth", "gauge", "queued widgets"),
            MetricSpec("queue_depth_total", "gauge", "declared gauge"),
            MetricSpec("latency_seconds", "histogram", "widget latency",
                       ("op",)),
        )
    }

    EVENTS_REGISTRY = {
        s.name: s
        for s in (
            EventSpec("widget_made", "a widget was made", ("count",)),
        )
    }

    SERIES_REGISTRY = {
        s.name: s
        for s in (
            SeriesSpec("widget_qps", "rate", "widgets per second",
                       ("widgets_total",)),
        )
    }

    def rule(self):
        return MetricNameRule(
            registry=dict(self.REGISTRY),
            events_registry=dict(self.EVENTS_REGISTRY),
            series_registry=dict(self.SERIES_REGISTRY),
        )

    def test_flags_every_failure_mode(self):
        findings = lint_fixture("obs_bad", self.rule())
        messages = [f.message for f in findings]
        assert len(findings) == 11
        assert any("2 call sites" in m for m in messages)
        assert any("'surprises_total' is not declared" in m for m in messages)
        assert any("'widget_count' is not declared" in m for m in messages)
        assert any("must end in '_total'" in m for m in messages)
        assert any("declared as a gauge, created as a counter" in m
                   for m in messages)
        assert any("('queue',)" in m and "('op',)" in m for m in messages)
        assert any("dynamic metric name" in m for m in messages)
        assert any("event 'surprise_event' is not declared" in m
                   for m in messages)
        assert any("undeclared field 'color'" in m for m in messages)
        assert any("dynamic event name" in m for m in messages)
        assert any("series 'surprise_series' is not declared" in m
                   for m in messages)

    def test_clean_fixture_passes(self):
        assert lint_fixture("obs_good", self.rule()) == []

    def test_spec_resolution_allows_dynamic_names(self):
        findings = lint_fixture("obs_good", self.rule())
        assert not [f for f in findings if "dynamic" in f.message]

    def test_emit_has_no_single_site_requirement(self):
        # Emission is not registration: the same event may be emitted
        # from many call sites without a finding.
        findings = lint_fixture("obs_good", self.rule())
        assert not [f for f in findings if "call sites" in f.message]


class TestPlanPurity:
    def test_flags_literal_bearing_stage(self):
        findings = lint_fixture("pln_bad", PlanPurityRule())
        assert len(findings) == 3
        messages = " | ".join(f.message for f in findings)
        assert "slot 'value_text'" in messages
        assert "parameter 'value_text'" in messages
        assert "bakes constant 3" in messages

    def test_unmarked_class_is_ignored(self):
        findings = lint_fixture("pln_bad", PlanPurityRule())
        assert not [f for f in findings if "NotAStage" in f.message]

    def test_clean_fixture_passes(self):
        assert lint_fixture("pln_good", PlanPurityRule()) == []


class TestStageSurface:
    def test_flags_missing_declaration_and_drift(self):
        findings = lint_fixture("pln2_bad", StageSurfaceRule())
        assert len(findings) == 3
        assert all(f.rule_id == "PLN02" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "does not declare HANDLED_STAGE_KINDS" in messages
        assert "missing stage kind(s) 'object-intersect'" in messages
        assert "unknown stage kind(s) 'full-scan'" in messages

    def test_drift_findings_point_at_declaration_line(self):
        findings = lint_fixture("pln2_bad", StageSurfaceRule())
        drift = [f for f in findings if "stage kind(s)" in f.message]
        assert {f.line for f in drift} == {4}

    def test_clean_fixture_passes(self):
        # Declaration order does not matter — equality is as a set.
        assert lint_fixture("pln2_good", StageSurfaceRule()) == []

    def test_no_ir_module_stays_silent(self):
        # Fixture trees without core/logical.py have no surface to pin.
        assert lint_fixture("txn_good", StageSurfaceRule()) == []


class TestBackendParity:
    def test_flags_interface_drift(self):
        findings = lint_fixture("par_bad", BackendParityRule())
        messages = [f.message for f in findings]
        assert len(findings) == 3
        assert any(
            "MemoryHybridStore does not override abstract "
            "HybridStore.delete_object" in m
            for m in messages
        )
        assert any("MemoryHybridStore.vacuum is public" in m for m in messages)
        assert any("SqliteHybridStore.checkpoint is public" in m
                   for m in messages)

    def test_clean_fixture_passes(self):
        assert lint_fixture("par_good", BackendParityRule()) == []

    def test_missing_base_is_not_an_error(self):
        # Partial fixture trees (no HybridStore in view) have nothing
        # to pin — the rule stays silent instead of guessing.
        assert lint_fixture("pln_good", BackendParityRule()) == []


class TestLockReachability:
    def test_flags_unlocked_entry_points(self):
        findings = active(lint_fixture("lck1_bad", LockReachabilityRule()))
        assert len(findings) == 2
        assert all(f.rule_id == "LCK01" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "BadStore.has_object is a read entry point" in messages
        assert "BadStore.store_object is a write entry point" in messages

    def test_locked_entries_pass_through_any_path(self):
        # GoodStore.store_object reaches run_transaction indirectly and
        # has_object reaches read_locked lexically — both discharge.
        assert active(lint_fixture("lck1_good", LockReachabilityRule())) == []

    def test_facade_entries_discharge_through_shard_calls(self):
        # ShardedCatalog.query reaches _reader only via the optimistic
        # fan-out through _LegStore.match_objects.
        findings = active(lint_fixture("lck1_bad", LockReachabilityRule()))
        assert not [f for f in findings if "ShardedCatalog" in f.message]


class TestLockOrder:
    def test_flags_upgrade_worker_and_cycle(self):
        findings = active(lint_fixture("lck1_bad", LockOrderRule()))
        assert len(findings) == 3
        assert all(f.rule_id == "LCK02" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "read→write upgrade on BadStore.rwlock" in messages
        assert "worker run_leg() submitted to an executor" in messages
        assert "lock-order cycle" in messages

    def test_cycle_names_both_locks(self):
        findings = active(lint_fixture("lck1_bad", LockOrderRule()))
        cycle = [f for f in findings if "cycle" in f.message]
        assert len(cycle) == 1
        assert "ShardedCatalog._route_lock" in cycle[0].message
        assert "ShardedCatalog._stats_lock" in cycle[0].message

    def test_consistent_order_and_lock_free_workers_pass(self):
        assert active(lint_fixture("lck1_good", LockOrderRule())) == []


class TestGuardedFields:
    def test_flags_unlocked_mutation_of_guarded_field(self):
        findings = active(lint_fixture("grd1_bad", GuardedFieldRule()))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule_id == "GRD01"
        assert "Router._locations is guarded by Router._lock" in finding.message
        assert "evict()" in finding.message

    def test_reads_and_init_mutations_are_exempt(self):
        # location_of reads without the lock; __init__ populates before
        # the object is shared — neither is a finding.
        assert active(lint_fixture("grd1_good", GuardedFieldRule())) == []


class TestResourceLifecycle:
    def test_flags_leak_discard_and_bare_yield(self):
        findings = active(lint_fixture("res1_bad", ResourceLifecycleRule()))
        assert len(findings) == 3
        assert all(f.rule_id == "RES01" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "never released" in messages
        assert "discarded" in messages

    def test_yield_is_not_a_transfer(self):
        # The generator context manager without try/finally is one of
        # the three findings (line 27 in the fixture).
        findings = active(lint_fixture("res1_bad", ResourceLifecycleRule()))
        assert any(f.line == 27 for f in findings)

    def test_ownership_idioms_pass(self):
        assert active(lint_fixture("res1_good", ResourceLifecycleRule())) == []


class TestSqlSafety:
    def test_flags_every_interpolation_shape(self):
        findings = active(lint_fixture("sql1_bad", SqlSafetyRule()))
        assert len(findings) == 6
        assert all(f.rule_id == "SQL01" for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "f-string interpolation" in messages
        assert "string concatenation" in messages
        assert ".format() interpolation" in messages
        assert "%-formatting" in messages
        assert "dynamic fragment" in messages

    def test_rebinding_does_not_sanction(self):
        # `name = table` then f"... {name}" is still a finding.
        findings = active(lint_fixture("sql1_bad", SqlSafetyRule()))
        assert any(f.line == 32 for f in findings)

    def test_quote_identifier_and_closures_pass(self):
        assert active(lint_fixture("sql1_good", SqlSafetyRule())) == []
