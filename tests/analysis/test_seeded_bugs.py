"""Seeded-bug demos: each test copies the real source tree, deletes or
swaps one concurrency-critical construct, and asserts the linter
catches exactly that regression.  The ``assert old in text`` inside
``mutate`` makes the demos fail loudly if the real code drifts away
from the seeded shape instead of silently testing nothing."""

import pathlib
import shutil

from repro.analysis import active, run_lint
from repro.analysis.rules import (
    LockOrderRule,
    LockReachabilityRule,
    ResourceLifecycleRule,
)

SRC = pathlib.Path(__file__).parents[2] / "src" / "repro"


def copy_tree(tmp_path):
    dest = tmp_path / "repro"
    shutil.copytree(SRC, dest, ignore=shutil.ignore_patterns("__pycache__"))
    return dest


def mutate(path, old, new):
    text = path.read_text()
    assert old in text, f"seeded-bug anchor not found in {path.name}"
    path.write_text(text.replace(old, new))


class TestSeededBugs:
    def test_deleted_read_lock_is_caught(self, tmp_path):
        tree = copy_tree(tmp_path)
        rule = LockReachabilityRule()
        assert active(run_lint(tree, rules=[rule])) == []
        mutate(
            tree / "core" / "storage.py",
            "    def has_object(self, object_id: int) -> bool:\n"
            "        with self.read_locked():\n"
            "            return bool(",
            "    def has_object(self, object_id: int) -> bool:\n"
            "        return bool(",
        )
        findings = active(run_lint(tree, rules=[LockReachabilityRule()]))
        assert len(findings) == 1
        assert findings[0].rule_id == "LCK01"
        assert "MemoryHybridStore.has_object is a read entry point" in (
            findings[0].message
        )

    def test_swapped_lock_order_is_caught(self, tmp_path):
        tree = copy_tree(tmp_path)
        path = tree / "sharding" / "catalog.py"
        # Seed a second facade lock, consistently ordered in both write
        # paths: the baseline must stay clean.
        mutate(
            path,
            "        self._write_lock = threading.Lock()",
            "        self._write_lock = threading.Lock()\n"
            "        self._order_lock = threading.Lock()",
        )
        mutate(
            path,
            "        with self._write_lock:\n"
            "            object_id = next(self._object_ids)",
            "        with self._write_lock:\n"
            "            with self._order_lock:\n"
            "                object_id = next(self._object_ids)",
        )
        mutate(
            path,
            "        with self._write_lock:\n"
            "            self._locations.pop(object_id, None)",
            "        with self._write_lock:\n"
            "            with self._order_lock:\n"
            "                self._locations.pop(object_id, None)",
        )
        assert active(run_lint(tree, rules=[LockOrderRule()])) == []
        # Swap the nesting in delete(): a global ordering violation.
        mutate(
            path,
            "        with self._write_lock:\n"
            "            with self._order_lock:\n"
            "                self._locations.pop(object_id, None)",
            "        with self._order_lock:\n"
            "            with self._write_lock:\n"
            "                self._locations.pop(object_id, None)",
        )
        findings = active(run_lint(tree, rules=[LockOrderRule()]))
        assert len(findings) == 1
        assert findings[0].rule_id == "LCK02"
        assert "lock-order cycle" in findings[0].message
        assert "_write_lock" in findings[0].message
        assert "_order_lock" in findings[0].message

    def test_removed_finally_release_is_caught(self, tmp_path):
        tree = copy_tree(tmp_path)
        rule = ResourceLifecycleRule()
        assert active(run_lint(tree, rules=[rule])) == []
        mutate(
            tree / "backends" / "pool.py",
            "            raise\n"
            "        finally:\n"
            "            self._release(conn)",
            "            raise",
        )
        findings = active(run_lint(tree, rules=[ResourceLifecycleRule()]))
        assert len(findings) == 1
        assert findings[0].rule_id == "RES01"
        assert "_acquire() result bound to 'conn' is never released" in (
            findings[0].message
        )
