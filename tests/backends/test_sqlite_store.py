"""Unit tests for the sqlite hybrid store."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op, PlanTrace
from repro.errors import CatalogClosedError, CatalogError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import canonical, parse


@pytest.fixture()
def catalog():
    cat = HybridCatalog(lead_schema(), store=SqliteHybridStore())
    define_fig3_attributes(cat)
    cat.ingest(FIG3_DOCUMENT, name="fig3")
    return cat


def paper_query():
    crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
    sub = AttributeCriteria("grid-stretching", "ARPS").add_element("dzmin", None, 100)
    crit.add_attribute(sub)
    return ObjectQuery().add_attribute(crit)


class TestLifecycle:
    def test_double_install_rejected(self):
        store = SqliteHybridStore()
        store.install_schema(lead_schema())
        with pytest.raises(CatalogError):
            store.install_schema(lead_schema())

    def test_object_count(self, catalog):
        assert catalog.store.object_count() == 1
        assert catalog.store.has_object(1)
        assert not catalog.store.has_object(2)

    def test_delete_object(self, catalog):
        catalog.delete(1)
        assert catalog.store.object_count() == 0
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        assert catalog.query(query) == []

    def test_delete_unknown_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.store.delete_object(9)

    def test_storage_report_covers_tables(self, catalog):
        names = {n for n, _r, _b in catalog.storage_report()}
        assert {"objects", "clobs", "attributes", "elements"} <= names


class TestClose:
    """The close() lifecycle contract: idempotent, typed errors after,
    pooled reader connections actually returned and shut down."""

    def test_double_close_is_idempotent(self, catalog):
        catalog.store.close()
        catalog.store.close()  # must not raise

    def test_use_after_close_raises_typed_error(self, catalog):
        catalog.store.close()
        with pytest.raises(CatalogClosedError):
            catalog.store.has_object(1)
        with pytest.raises(CatalogClosedError):
            catalog.query(paper_query())
        with pytest.raises(CatalogClosedError):
            catalog.ingest(FIG3_DOCUMENT)

    def test_cached_query_still_raises_after_close(self, catalog):
        # A result-cache hit never reaches the store; the catalog must
        # check the store's lifecycle itself.
        query = paper_query()
        assert catalog.query(query) == catalog.query(query)
        catalog.store.close()
        with pytest.raises(CatalogClosedError):
            catalog.query(query)

    def test_close_drains_the_reader_pool(self, tmp_path):
        cat = HybridCatalog(
            lead_schema(), store=SqliteHybridStore(str(tmp_path / "c.db"))
        )
        define_fig3_attributes(cat)
        cat.ingest(FIG3_DOCUMENT, name="fig3")
        cat.query(paper_query())  # forces at least one pooled checkout
        pool = cat.store._pool
        assert pool.acquires > 0
        cat.store.close()
        assert pool.open_connections() == 0
        with pytest.raises(CatalogClosedError):
            with pool.connection():
                pass

    def test_close_inside_read_section_waits_its_turn(self, catalog):
        # close() takes the write lock, so it cannot run while a reader
        # holds the read lock on the same thread (upgrade is an error).
        with catalog.store.read_locked():
            with pytest.raises(RuntimeError):
                catalog.store.close()
        catalog.store.close()


class TestSqlPlan:
    def test_paper_query(self, catalog):
        assert catalog.query(paper_query()) == [1]

    def test_trace_stages(self, catalog):
        trace = PlanTrace()
        catalog.query(paper_query(), trace=trace)
        assert trace.stage_names() == [
            "query-criteria",
            "elements-meeting-criteria",
            "attributes-direct",
            "attributes-indirect",
            "object-ids",
        ]

    def test_all_operators(self, catalog):
        cases = [
            ("dx", 1000, Op.EQ, [1]),
            ("dx", 1000, Op.NE, []),
            ("dx", 500, Op.GT, [1]),
            ("dx", 1000, Op.GE, [1]),
            ("dx", 2000, Op.LT, [1]),
            ("dx", 999, Op.LE, []),
        ]
        for name, value, op, expected in cases:
            query = ObjectQuery().add_attribute(
                AttributeCriteria("grid", "ARPS").add_element(name, "ARPS", value, op)
            )
            assert catalog.query(query) == expected, (name, op)

    def test_contains_operator(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "cloud", Op.CONTAINS)
        )
        assert catalog.query(query) == [1]

    def test_existence_only_criterion(self, catalog):
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        assert catalog.query(query) == [1]

    def test_temp_tables_cleaned_up(self, catalog):
        for _ in range(3):
            catalog.query(paper_query())
        leftovers = catalog.store.connection.execute(
            "SELECT name FROM sqlite_temp_master WHERE type='table'"
        ).fetchall()
        assert leftovers == []


class TestSqlResponse:
    def test_roundtrip(self, catalog):
        response = catalog.fetch([1])[1]
        assert canonical(parse(response)) == canonical(parse(FIG3_DOCUMENT))

    def test_unknown_object_absent(self, catalog):
        assert set(catalog.fetch([1, 7])) == {1}

    def test_multi_object_fetch(self, catalog):
        catalog.ingest(FIG3_DOCUMENT)
        responses = catalog.fetch([1, 2])
        assert canonical(parse(responses[1])) == canonical(parse(responses[2]))
