"""Unit tests for the whole-document CLOB baseline."""

import pytest

from repro.baselines import ClobCatalog
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery
from repro.errors import CatalogError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import XMLSyntaxError


@pytest.fixture()
def clob_catalog():
    hybrid = HybridCatalog(lead_schema())
    define_fig3_attributes(hybrid)
    catalog = ClobCatalog(lead_schema(), registry=hybrid.registry)
    catalog.ingest(FIG3_DOCUMENT, name="fig3")
    return catalog


class TestIngest:
    def test_object_ids_assigned(self, clob_catalog):
        assert clob_catalog.ingest(FIG3_DOCUMENT) == 2

    def test_malformed_rejected(self, clob_catalog):
        with pytest.raises(XMLSyntaxError):
            clob_catalog.ingest("<broken>")

    def test_single_row_per_document(self, clob_catalog):
        report = dict(
            (name, rows) for name, rows, _bytes in clob_catalog.storage_report()
        )
        assert report["documents"] == 1


class TestFetch:
    def test_returns_exact_original_text(self, clob_catalog):
        assert clob_catalog.fetch([1])[1] == FIG3_DOCUMENT

    def test_unknown_object_raises(self, clob_catalog):
        with pytest.raises(CatalogError):
            clob_catalog.fetch([9])


class TestQuery:
    def test_parse_and_scan_matches(self, clob_catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        )
        assert clob_catalog.query(query) == [1]

    def test_no_match(self, clob_catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1)
        )
        assert clob_catalog.query(query) == []

    def test_every_document_parsed_per_query(self, clob_catalog):
        """The scheme's cost model: query cost grows with corpus size
        regardless of selectivity (no shredded rows to index)."""
        for _ in range(4):
            clob_catalog.ingest(FIG3_DOCUMENT)
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        assert clob_catalog.query(query) == [1, 2, 3, 4, 5]
