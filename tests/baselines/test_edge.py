"""Unit tests for the edge-table baseline."""

import pytest

from repro.baselines import EdgeCatalog
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.errors import CatalogError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import canonical, parse


@pytest.fixture()
def edge_catalog():
    hybrid = HybridCatalog(lead_schema())
    define_fig3_attributes(hybrid)
    catalog = EdgeCatalog(lead_schema(), registry=hybrid.registry)
    catalog.ingest(FIG3_DOCUMENT, name="fig3")
    return catalog


class TestIngest:
    def test_one_edge_per_element(self, edge_catalog):
        report = dict((n, r) for n, r, _b in edge_catalog.storage_report())
        element_count = sum(1 for _ in parse(FIG3_DOCUMENT).root.iter())
        assert report["edges"] == element_count

    def test_leaf_values_stored(self, edge_catalog):
        report = dict((n, r) for n, r, _b in edge_catalog.storage_report())
        assert report["values_text"] > 0
        # Numeric value table holds the parseable subset.
        assert 0 < report["values_num"] < report["values_text"]


class TestStructuralQueries:
    def test_theme_keyword(self, edge_catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element(
                "themekey", "", "air_pressure_at_cloud_base"
            )
        )
        assert edge_catalog.query(query) == [1]

    def test_leaf_attribute_by_own_name(self, edge_catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("resourceID").add_element(
                "resourceID", "", "lead:ARPS-forecast-001"
            )
        )
        assert edge_catalog.query(query) == [1]

    def test_no_match(self, edge_catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "nope")
        )
        assert edge_catalog.query(query) == []


class TestDynamicQueries:
    def test_entity_navigation(self, edge_catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        )
        assert edge_catalog.query(query) == [1]

    def test_numeric_comparison_from_value_table(self, edge_catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dz", "ARPS", 400, Op.GE)
        )
        assert edge_catalog.query(query) == [1]

    def test_nested_sub_attribute_walk(self, edge_catalog):
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        sub = AttributeCriteria("grid-stretching", "ARPS").add_element("dzmin", None, 100)
        crit.add_attribute(sub)
        assert edge_catalog.query(ObjectQuery().add_attribute(crit)) == [1]

    def test_wrong_source_rejected_by_navigation(self, edge_catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "WRF").add_element("dx", "WRF", 1000)
        )
        assert edge_catalog.query(query) == []

    def test_empty_query_rejected(self, edge_catalog):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            edge_catalog.query(ObjectQuery())


class TestReconstruction:
    def test_tree_rebuild_canonical_equal(self, edge_catalog):
        rebuilt = edge_catalog.fetch([1])[1]
        assert canonical(parse(rebuilt)) == canonical(parse(FIG3_DOCUMENT))

    def test_sibling_order_preserved(self, edge_catalog):
        rebuilt = edge_catalog.fetch([1])[1]
        assert rebuilt.index("convective_precipitation_amount") < rebuilt.index(
            "air_pressure_at_cloud_base"
        )

    def test_unknown_object_raises(self, edge_catalog):
        with pytest.raises(CatalogError):
            edge_catalog.fetch([42])
