"""Unit tests for the schema-inlining baseline."""

import pytest

from repro.baselines import InliningCatalog
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.errors import CatalogError, ShredError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import canonical, parse


@pytest.fixture()
def inlining():
    hybrid = HybridCatalog(lead_schema())
    define_fig3_attributes(hybrid)
    catalog = InliningCatalog(lead_schema(), registry=hybrid.registry)
    catalog.ingest(FIG3_DOCUMENT, name="fig3")
    return catalog


class TestTableDerivation:
    def test_root_table_exists(self, inlining):
        names = {n for n, _r, _b in inlining.storage_report()}
        assert "t_leadresource" in names

    def test_repeatable_attributes_split_off(self, inlining):
        names = {n for n, _r, _b in inlining.storage_report()}
        theme_tables = [n for n in names if n.endswith("__theme")]
        assert len(theme_tables) == 1

    def test_set_valued_leaves_split_off(self, inlining):
        names = {n for n, _r, _b in inlining.storage_report()}
        assert any(n.endswith("__themekey") for n in names)

    def test_dynamic_section_gets_item_table(self, inlining):
        names = {n for n, _r, _b in inlining.storage_report()}
        assert any(n.endswith("__detailed") for n in names)
        assert any(n.endswith("__detailed_item") for n in names)

    def test_single_occurrence_leaves_inlined(self, inlining):
        table = inlining.root_spec.table
        assert any("resourceid" in c for c in table.column_names)

    def test_numeric_shadow_columns(self, inlining):
        # bounding westbc is a FLOAT element inlined into the root table.
        table = inlining.root_spec.table
        assert any(c.endswith("westbc_num") for c in table.column_names)


class TestIngest:
    def test_row_counts(self, inlining):
        report = dict((n, r) for n, r, _b in inlining.storage_report())
        assert report["t_leadresource"] == 1
        theme_table = next(n for n in report if n.endswith("__theme"))
        assert report[theme_table] == 2
        item_table = next(n for n in report if n.endswith("__detailed_item"))
        assert report[item_table] == 5  # grid-stretching, dzmin, ref-height, dx, dz

    def test_unknown_element_rejected(self, inlining):
        with pytest.raises(ShredError):
            inlining.ingest("<LEADresource><bogus/></LEADresource>")

    def test_wrong_root_rejected(self, inlining):
        with pytest.raises(ShredError):
            inlining.ingest("<other/>")


class TestQueries:
    def test_repeatable_attribute_semijoin(self, inlining):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element(
                "themekey", "", "convective_precipitation_flux"
            )
        )
        assert inlining.query(query) == [1]

    def test_inlined_leaf_attribute(self, inlining):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("resourceID").add_element(
                "resourceID", "", "lead:ARPS-forecast-001"
            )
        )
        assert inlining.query(query) == [1]

    def test_dynamic_entity_filter(self, inlining):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        )
        assert inlining.query(query) == [1]

    def test_dynamic_numeric_range(self, inlining):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dz", "ARPS", 499.0, Op.GT)
        )
        assert inlining.query(query) == [1]

    def test_dynamic_sub_attribute_self_joins(self, inlining):
        crit = AttributeCriteria("grid", "ARPS")
        sub = AttributeCriteria("grid-stretching", "ARPS").add_element(
            "dzmin", None, 100
        )
        crit.add_attribute(sub)
        assert inlining.query(ObjectQuery().add_attribute(crit)) == [1]

    def test_no_match(self, inlining):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 7)
        )
        assert inlining.query(query) == []

    def test_existence_of_inlined_attribute(self, inlining):
        # status is absent from the Fig-3 document: existence must fail
        # even though the (inlined) root row exists.
        query = ObjectQuery().add_attribute(AttributeCriteria("status"))
        assert inlining.query(query) == []


class TestReconstruction:
    def test_canonical_roundtrip(self, inlining):
        rebuilt = inlining.fetch([1])[1]
        assert canonical(parse(rebuilt)) == canonical(parse(FIG3_DOCUMENT))

    def test_unknown_object_raises(self, inlining):
        with pytest.raises(CatalogError):
            inlining.fetch([5])

    def test_empty_wrappers_pruned(self, inlining):
        rebuilt = inlining.fetch([1])[1]
        # Fig-3 has no spdom/bounding content: wrappers must not appear.
        assert "<spdom>" not in rebuilt
