"""Unit tests for the scan oracle."""

import pytest

from repro.baselines import evaluate_shredded_query
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op, shred_query
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import parse


@pytest.fixture(scope="module")
def env():
    catalog = HybridCatalog(lead_schema())
    define_fig3_attributes(catalog)
    shred = catalog.shredder.shred(parse(FIG3_DOCUMENT))
    return catalog, shred


def run(env, criteria):
    catalog, shred = env
    query = ObjectQuery().add_attribute(criteria)
    return evaluate_shredded_query(shred_query(query, catalog.registry), shred)


class TestScanOracle:
    def test_matching_element(self, env):
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        assert run(env, crit)

    def test_non_matching_element(self, env):
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 9999)
        assert not run(env, crit)

    def test_sub_attribute_chain(self, env):
        crit = AttributeCriteria("grid", "ARPS")
        sub = AttributeCriteria("grid-stretching", "ARPS").add_element("dzmin", None, 100)
        crit.add_attribute(sub)
        assert run(env, crit)

    def test_sub_attribute_value_mismatch(self, env):
        crit = AttributeCriteria("grid", "ARPS")
        sub = AttributeCriteria("grid-stretching", "ARPS").add_element("dzmin", None, 1)
        crit.add_attribute(sub)
        assert not run(env, crit)

    def test_existence_only(self, env):
        assert run(env, AttributeCriteria("theme"))
        assert not run(env, AttributeCriteria("place"))

    def test_repeatable_attribute_any_instance(self, env):
        crit = AttributeCriteria("theme").add_element(
            "themekey", "", "air_pressure_at_cloud_top"
        )
        assert run(env, crit)

    def test_multiple_criteria_single_instance_semantics(self, env):
        # themekt=CF NetCDF AND themekey=convective_... hold in theme #1
        crit = (
            AttributeCriteria("theme")
            .add_element("themekt", "", "CF NetCDF")
            .add_element("themekey", "", "convective_precipitation_flux")
        )
        assert run(env, crit)

    def test_criteria_split_across_instances_fail(self, env):
        # No single theme instance holds both keywords.
        crit = (
            AttributeCriteria("theme")
            .add_element("themekey", "", "convective_precipitation_flux")
            .add_element("themekey", "", "air_pressure_at_cloud_top")
        )
        assert not run(env, crit)

    def test_contains_operator(self, env):
        crit = AttributeCriteria("theme").add_element(
            "themekey", "", "cloud", Op.CONTAINS
        )
        assert run(env, crit)

    def test_conjunction_of_top_criteria(self, env):
        catalog, shred = env
        query = ObjectQuery()
        query.add_attribute(AttributeCriteria("theme"))
        query.add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dz", "ARPS", 500)
        )
        assert evaluate_shredded_query(shred_query(query, catalog.registry), shred)

    def test_conjunction_fails_if_one_leg_fails(self, env):
        catalog, shred = env
        query = ObjectQuery()
        query.add_attribute(AttributeCriteria("theme"))
        query.add_attribute(AttributeCriteria("place"))
        assert not evaluate_shredded_query(shred_query(query, catalog.registry), shred)
