"""Shared fixtures: the LEAD schema, a Figure-3 catalog, small corpora."""

from __future__ import annotations

import pytest

from repro.core import HybridCatalog
from repro.grid import (
    FIG3_DOCUMENT,
    CorpusConfig,
    LeadCorpusGenerator,
    PlantedMarker,
    define_fig3_attributes,
    lead_schema,
)


@pytest.fixture()
def schema():
    return lead_schema()


@pytest.fixture()
def fig3_catalog(schema):
    """A hybrid catalog with the Fig-3 dynamic definitions registered and
    the Fig-3 document ingested as object 1."""
    catalog = HybridCatalog(schema)
    define_fig3_attributes(catalog)
    catalog.ingest(FIG3_DOCUMENT, name="fig3", owner="jensen")
    return catalog


@pytest.fixture(scope="session")
def corpus_config():
    return CorpusConfig(
        seed=1106,
        themes=2,
        places=1,
        keys_per_theme=3,
        dynamic_groups=2,
        params_per_group=5,
        dynamic_depth=3,
        planted=[PlantedMarker("planted_every_5", 5), PlantedMarker("planted_every_2", 2)],
    )


@pytest.fixture(scope="session")
def corpus_docs(corpus_config):
    return list(LeadCorpusGenerator(corpus_config).documents(24))


@pytest.fixture()
def corpus_catalog(corpus_config, corpus_docs):
    catalog = HybridCatalog(lead_schema())
    LeadCorpusGenerator(corpus_config).register_definitions(catalog)
    catalog.ingest_many(corpus_docs)
    return catalog
