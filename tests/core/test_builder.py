"""Unit tests for the guided query builder (the §4 GUI tool surrogate)."""

import pytest

from repro.core import HybridCatalog, Op, QueryBuilder
from repro.errors import QueryError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema


@pytest.fixture()
def catalog():
    cat = HybridCatalog(lead_schema())
    define_fig3_attributes(cat)
    cat.ingest(FIG3_DOCUMENT, name="fig3")
    return cat


@pytest.fixture()
def builder(catalog):
    return QueryBuilder(catalog.registry)


class TestIntrospection:
    def test_top_level_choices_offer_schema_and_dynamic(self, builder):
        labels = {c.label for c in builder.attribute_choices()}
        assert "theme" in labels
        assert "grid/ARPS" in labels
        assert "grid-stretching/ARPS" not in labels  # sub-attribute

    def test_sub_attribute_choices(self, builder, catalog):
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        labels = {c.label for c in builder.attribute_choices(parent=grid)}
        assert labels == {"grid-stretching/ARPS"}

    def test_element_choices_typed(self, builder, catalog):
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        choices = builder.element_choices(grid)
        assert ("dx", "ARPS", "float") in choices

    def test_non_queryable_hidden(self, catalog):
        catalog.define_attribute("hidden", "SRC", queryable=False)
        labels = {c.label for c in QueryBuilder(catalog.registry).attribute_choices()}
        assert "hidden/SRC" not in labels

    def test_private_definitions_scoped(self, catalog):
        catalog.define_attribute("mine", "SRC", user="ann")
        anonymous = {c.label for c in QueryBuilder(catalog.registry).attribute_choices()}
        owned = {
            c.label
            for c in QueryBuilder(catalog.registry, user="ann").attribute_choices()
        }
        assert "mine/SRC" not in anonymous
        assert "mine/SRC" in owned


class TestConstruction:
    def test_paper_query_via_builder(self, catalog):
        query = (
            QueryBuilder(catalog.registry)
            .start("grid", "ARPS")
            .element("dx", 1000)
            .sub("grid-stretching")
            .element("dzmin", 100)
            .build()
        )
        assert catalog.query(query) == [1]

    def test_up_returns_to_parent(self, catalog):
        builder = QueryBuilder(catalog.registry)
        builder.start("grid", "ARPS").sub("grid-stretching").element("dzmin", 100)
        builder.up().element("dx", 1000)
        assert catalog.query(builder.build()) == [1]

    def test_multiple_top_criteria(self, catalog):
        builder = QueryBuilder(catalog.registry)
        builder.start("theme").up()
        builder.start("grid", "ARPS").element("dz", 500)
        assert catalog.query(builder.build()) == [1]

    def test_unknown_attribute_lists_offers(self, builder):
        with pytest.raises(QueryError, match="available:"):
            builder.start("nonexistent", "X")

    def test_unknown_element_lists_offers(self, builder):
        builder.start("grid", "ARPS")
        with pytest.raises(QueryError, match="available:"):
            builder.element("bogus", 1)

    def test_type_validation_early(self, builder):
        builder.start("grid", "ARPS")
        with pytest.raises(QueryError, match="not a valid comparison value"):
            builder.element("dx", "wide")

    def test_unknown_sub_attribute(self, builder):
        builder.start("grid", "ARPS")
        with pytest.raises(QueryError, match="under 'grid'"):
            builder.sub("nonexistent")

    def test_start_while_open_rejected(self, builder):
        builder.start("theme")
        with pytest.raises(QueryError, match="up\\(\\)"):
            builder.start("citation")

    def test_element_without_start(self, builder):
        with pytest.raises(QueryError, match="start"):
            builder.element("dx", 1)

    def test_sub_without_start(self, builder):
        with pytest.raises(QueryError):
            builder.sub("grid-stretching")

    def test_up_on_empty_stack(self, builder):
        with pytest.raises(QueryError):
            builder.up()

    def test_build_empty_rejected(self, builder):
        with pytest.raises(QueryError, match="no criteria"):
            builder.build()

    def test_build_closes_open_criteria(self, catalog):
        builder = QueryBuilder(catalog.registry)
        builder.start("grid", "ARPS").sub("grid-stretching").element("dzmin", 100)
        query = builder.build()  # still two levels open
        assert catalog.query(query) == [1]

    def test_in_set_skips_scalar_type_check(self, catalog):
        builder = QueryBuilder(catalog.registry)
        builder.start("grid", "ARPS").element("dx", [1000, 2000], Op.IN_SET)
        assert catalog.query(builder.build()) == [1]
