"""Unit tests for the parallel bulk loader."""

import pytest

from repro.core import HybridCatalog
from repro.core.bulk import BulkLoader
from repro.errors import CatalogError
from repro.grid import CorpusConfig, LeadCorpusGenerator, lead_schema


@pytest.fixture(scope="module")
def corpus():
    config = CorpusConfig(seed=21, themes=2, dynamic_groups=2, dynamic_depth=2)
    generator = LeadCorpusGenerator(config)
    return generator, list(generator.documents(12))


def fresh_catalog(generator):
    catalog = HybridCatalog(lead_schema())
    generator.register_definitions(catalog)
    return catalog


def table_rows(catalog, name):
    return sorted(catalog.store.db.table(name).scan())


class TestSerialPath:
    def test_single_process_matches_ingest_many(self, corpus):
        generator, documents = corpus
        sequential = fresh_catalog(generator)
        sequential.ingest_many(documents)
        bulk = fresh_catalog(generator)
        BulkLoader(bulk, processes=1).load(documents)
        for table in ("clobs", "attributes", "elements", "attr_ancestors"):
            assert table_rows(sequential, table) == table_rows(bulk, table), table

    def test_receipts_in_order(self, corpus):
        generator, documents = corpus
        catalog = fresh_catalog(generator)
        receipts = BulkLoader(catalog, processes=1).load(documents)
        assert [r.object_id for r in receipts] == list(range(1, len(documents) + 1))

    def test_names_assigned(self, corpus):
        generator, documents = corpus
        catalog = fresh_catalog(generator)
        BulkLoader(catalog, processes=1).load(documents, name_prefix="run")
        assert catalog.object_name(1) == "run-1"


class TestParallelPath:
    def test_parallel_matches_sequential(self, corpus):
        generator, documents = corpus
        sequential = fresh_catalog(generator)
        sequential.ingest_many(documents)
        parallel = fresh_catalog(generator)
        BulkLoader(parallel, processes=2).load(documents)
        for table in ("clobs", "attributes", "elements", "attr_ancestors"):
            assert table_rows(sequential, table) == table_rows(parallel, table), table

    def test_queries_work_after_parallel_load(self, corpus):
        from repro.core import AttributeCriteria, ObjectQuery

        generator, documents = corpus
        catalog = fresh_catalog(generator)
        BulkLoader(catalog, processes=2).load(documents)
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        assert catalog.query(query) == list(range(1, len(documents) + 1))

    def test_mixed_load_then_ingest_ids_continue(self, corpus):
        generator, documents = corpus
        catalog = fresh_catalog(generator)
        BulkLoader(catalog, processes=1).load(documents[:3])
        receipt = catalog.ingest(documents[3])
        assert receipt.object_id == 4


class TestGuards:
    def test_auto_define_catalog_rejected(self, corpus):
        generator, _documents = corpus
        catalog = HybridCatalog(lead_schema(), on_unknown="define")
        with pytest.raises(CatalogError, match="pre-registered vocabulary"):
            BulkLoader(catalog)

    def test_default_processes_positive(self, corpus):
        generator, _documents = corpus
        loader = BulkLoader(fresh_catalog(generator))
        assert loader.processes >= 1
