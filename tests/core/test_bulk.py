"""Unit tests for the parallel bulk loader."""

import pytest

from repro.core import HybridCatalog
from repro.core.bulk import BulkLoader
from repro.errors import CatalogError
from repro.grid import CorpusConfig, LeadCorpusGenerator, lead_schema


@pytest.fixture(scope="module")
def corpus():
    config = CorpusConfig(seed=21, themes=2, dynamic_groups=2, dynamic_depth=2)
    generator = LeadCorpusGenerator(config)
    return generator, list(generator.documents(12))


def fresh_catalog(generator):
    catalog = HybridCatalog(lead_schema())
    generator.register_definitions(catalog)
    return catalog


def table_rows(catalog, name):
    return sorted(catalog.store.db.table(name).scan())


class TestSerialPath:
    def test_single_process_matches_ingest_many(self, corpus):
        generator, documents = corpus
        sequential = fresh_catalog(generator)
        sequential.ingest_many(documents)
        bulk = fresh_catalog(generator)
        BulkLoader(bulk, processes=1).load(documents)
        for table in ("clobs", "attributes", "elements", "attr_ancestors"):
            assert table_rows(sequential, table) == table_rows(bulk, table), table

    def test_receipts_in_order(self, corpus):
        generator, documents = corpus
        catalog = fresh_catalog(generator)
        receipts = BulkLoader(catalog, processes=1).load(documents)
        assert [r.object_id for r in receipts] == list(range(1, len(documents) + 1))

    def test_names_assigned(self, corpus):
        generator, documents = corpus
        catalog = fresh_catalog(generator)
        BulkLoader(catalog, processes=1).load(documents, name_prefix="run")
        assert catalog.object_name(1) == "run-1"


class TestParallelPath:
    def test_parallel_matches_sequential(self, corpus):
        generator, documents = corpus
        sequential = fresh_catalog(generator)
        sequential.ingest_many(documents)
        parallel = fresh_catalog(generator)
        BulkLoader(parallel, processes=2).load(documents)
        for table in ("clobs", "attributes", "elements", "attr_ancestors"):
            assert table_rows(sequential, table) == table_rows(parallel, table), table

    def test_queries_work_after_parallel_load(self, corpus):
        from repro.core import AttributeCriteria, ObjectQuery

        generator, documents = corpus
        catalog = fresh_catalog(generator)
        BulkLoader(catalog, processes=2).load(documents)
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        assert catalog.query(query) == list(range(1, len(documents) + 1))

    def test_mixed_load_then_ingest_ids_continue(self, corpus):
        generator, documents = corpus
        catalog = fresh_catalog(generator)
        BulkLoader(catalog, processes=1).load(documents[:3])
        receipt = catalog.ingest(documents[3])
        assert receipt.object_id == 4


class TestGuards:
    def test_auto_define_catalog_rejected(self, corpus):
        generator, _documents = corpus
        catalog = HybridCatalog(lead_schema(), on_unknown="define")
        with pytest.raises(CatalogError, match="pre-registered vocabulary"):
            BulkLoader(catalog)

    def test_default_processes_positive(self, corpus):
        generator, _documents = corpus
        loader = BulkLoader(fresh_catalog(generator))
        assert loader.processes >= 1


class TestPoolLifecycle:
    """Regression tests for the worker-pool leak fixes: close() is safe
    any number of times, a raising worker doesn't poison the warm pool,
    and an abandoned loader's finalizer shuts its pool down."""

    def test_close_without_pool_is_safe(self, corpus):
        generator, _documents = corpus
        loader = BulkLoader(fresh_catalog(generator), processes=2)
        loader.close()  # pool never started
        loader.close()

    def test_double_close_after_use(self, corpus):
        generator, documents = corpus
        loader = BulkLoader(fresh_catalog(generator), processes=2)
        loader.shred_batch(documents[:4])
        loader.close()
        loader.close()  # must not raise

    def test_raising_worker_does_not_poison_the_pool(self, corpus):
        generator, documents = corpus
        loader = BulkLoader(fresh_catalog(generator), processes=2)
        try:
            with pytest.raises(Exception):
                # Malformed XML raises inside the worker; that is an
                # ordinary exception, not a dead pool.
                loader.shred_batch(["<unclosed>", "<bad"])
            assert loader._pool is not None, "pool was discarded needlessly"
            # The same warm pool serves the next (good) batch.
            results = loader.shred_batch(documents[:4])
            assert len(results) == 4
        finally:
            loader.close()

    def test_context_manager_closes_pool(self, corpus):
        generator, documents = corpus
        with BulkLoader(fresh_catalog(generator), processes=2) as loader:
            loader.shred_batch(documents[:4])
            pool = loader._pool
        assert loader._pool is None
        assert pool._shutdown_thread

    def test_abandoned_loader_finalizer_shuts_pool_down(self, corpus):
        import gc

        generator, documents = corpus
        loader = BulkLoader(fresh_catalog(generator), processes=2)
        loader.shred_batch(documents[:4])
        pool = loader._pool
        del loader
        gc.collect()
        assert pool._shutdown_thread

    def test_load_after_failed_batch_matches_sequential(self, corpus):
        generator, documents = corpus
        sequential = fresh_catalog(generator)
        sequential.ingest_many(documents[:6])
        bulk = fresh_catalog(generator)
        with BulkLoader(bulk, processes=2) as loader:
            with pytest.raises(Exception):
                loader.load(["<nope"])
            loader.load(documents[:6])
        for table in ("clobs", "attributes", "elements", "attr_ancestors"):
            assert table_rows(sequential, table) == table_rows(bulk, table), table

    def test_load_moves_the_result_cache_token(self, corpus):
        from repro.core import AttributeCriteria, ObjectQuery

        generator, documents = corpus
        catalog = fresh_catalog(generator)
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        assert catalog.query(query) == []
        token = catalog.stats.cache_token()
        BulkLoader(catalog, processes=1).load(documents[:4])
        assert catalog.stats.cache_token() != token
        # Fresh results, not the cached pre-load answer.
        assert catalog.query(query) == [1, 2, 3, 4]
