"""Unit tests for the HybridCatalog facade."""

import pytest

from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, ValueType
from repro.errors import CatalogError, QueryError, ValidationError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import parse


class TestIngest:
    def test_receipt_statistics(self, fig3_catalog):
        # fixture already ingested object 1; ingest a second copy.
        receipt = fig3_catalog.ingest(FIG3_DOCUMENT, name="again")
        assert receipt.object_id == 2
        assert receipt.clob_count == 4
        assert receipt.attribute_count == 5
        assert receipt.element_count == 11
        assert receipt.warnings == []

    def test_accepts_parsed_document(self, fig3_catalog):
        receipt = fig3_catalog.ingest(parse(FIG3_DOCUMENT))
        assert receipt.object_id == 2

    def test_object_ids_monotonic(self, fig3_catalog):
        a = fig3_catalog.ingest(FIG3_DOCUMENT).object_id
        b = fig3_catalog.ingest(FIG3_DOCUMENT).object_id
        assert b == a + 1

    def test_len_counts_objects(self, fig3_catalog):
        assert len(fig3_catalog) == 1

    def test_ingest_many_names_objects(self, schema):
        catalog = HybridCatalog(schema)
        define_fig3_attributes(catalog)
        receipts = catalog.ingest_many([FIG3_DOCUMENT, FIG3_DOCUMENT])
        assert [r.name for r in receipts] == ["object-1", "object-2"]

    def test_ingest_many_names_unique_across_calls(self, fig3_catalog):
        # Regression: names derive from the allocated object id, so a
        # second ingest_many call cannot hand out duplicates (a
        # positional counter restarted at 1 per call used to).
        first = fig3_catalog.ingest_many([FIG3_DOCUMENT, FIG3_DOCUMENT])
        second = fig3_catalog.ingest_many([FIG3_DOCUMENT])
        names = [r.name for r in first + second]
        assert names == ["object-2", "object-3", "object-4"]
        assert len(set(names)) == len(names)
        assert all(
            fig3_catalog.object_name(r.object_id) == r.name
            for r in first + second
        )

    def test_object_name_lookup(self, fig3_catalog):
        assert fig3_catalog.object_name(1) == "fig3"
        with pytest.raises(CatalogError):
            fig3_catalog.object_name(99)

    def test_reject_mode_raises_on_unknown(self, schema):
        catalog = HybridCatalog(schema, on_unknown="reject")
        with pytest.raises(ValidationError):
            catalog.ingest(FIG3_DOCUMENT)

    def test_define_mode_auto_registers(self, schema):
        catalog = HybridCatalog(schema, on_unknown="define")
        receipt = catalog.ingest(FIG3_DOCUMENT)
        assert receipt.warnings == []
        assert catalog.registry.lookup_attribute("grid", "ARPS") is not None


class TestDelete:
    def test_delete_removes_from_queries(self, fig3_catalog):
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        assert fig3_catalog.query(query) == [1]
        fig3_catalog.delete(1)
        assert fig3_catalog.query(query) == []
        assert len(fig3_catalog) == 0

    def test_delete_unknown_raises(self, fig3_catalog):
        with pytest.raises(CatalogError):
            fig3_catalog.delete(42)


class TestDefinitions:
    def test_define_attribute_syncs_store(self, schema):
        catalog = HybridCatalog(schema)
        grid = catalog.define_attribute("g2", "WRF")
        rows = catalog.store.db.table("attr_defs").lookup(["attr_id"], [grid.attr_id])
        assert rows and rows[0][1] == "g2"

    def test_define_element_typed(self, schema):
        catalog = HybridCatalog(schema)
        grid = catalog.define_attribute("g2", "WRF")
        elem = catalog.define_element(grid, "dt", "WRF", ValueType.INTEGER)
        assert elem.value_type is ValueType.INTEGER


class TestQueryFacade:
    def test_query_then_fetch_equals_search(self, fig3_catalog):
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        ids = fig3_catalog.query(query)
        fetched = fig3_catalog.fetch(ids)
        assert fig3_catalog.search(query) == [fetched[i] for i in ids]

    def test_query_validates_against_registry(self, fig3_catalog):
        query = ObjectQuery().add_attribute(AttributeCriteria("never-defined", "X"))
        with pytest.raises(QueryError):
            fig3_catalog.query(query)

    def test_storage_report_names_catalog_tables(self, fig3_catalog):
        names = {name for name, _r, _b in fig3_catalog.storage_report()}
        assert {"objects", "clobs", "attributes", "elements", "attr_ancestors"} <= names

    def test_user_scoped_query(self, schema):
        catalog = HybridCatalog(schema)
        private = catalog.define_attribute("mine", "SRC", user="ann")
        catalog.define_element(private, "v", "SRC")
        query = ObjectQuery().add_attribute(AttributeCriteria("mine", "SRC"))
        with pytest.raises(QueryError):
            catalog.query(query)
        assert catalog.query(query, user="ann") == []
