"""Unit tests for the definition registry (paper §2-§3)."""

import pytest

from repro.core import (
    ADMIN_SCOPE,
    AnnotatedSchema,
    DefinitionRegistry,
    DynamicSpec,
    ValueType,
    attribute,
    melement,
    structural,
    sub_attribute,
)
from repro.errors import DefinitionError


@pytest.fixture()
def schema():
    return AnnotatedSchema(
        structural(
            "root",
            attribute("leaf"),
            attribute(
                "box",
                melement("width", value_type=ValueType.FLOAT),
                sub_attribute("inner", melement("depth")),
            ),
            attribute("dyn", dynamic=DynamicSpec(), repeatable=True),
        )
    )


@pytest.fixture()
def registry(schema):
    return DefinitionRegistry(schema)


class TestStructuralRegistration:
    def test_every_attribute_gets_a_definition(self, registry):
        names = {d.name for d in registry.all_attributes()}
        assert {"leaf", "box", "dyn", "inner"} <= names

    def test_structural_defs_have_empty_source(self, registry):
        assert registry.structural_attribute("box").source == ""

    def test_sub_attribute_parent_link(self, registry):
        box = registry.structural_attribute("box")
        inner = registry.lookup_attribute("inner", "", parent=box)
        assert inner.parent_id == box.attr_id
        assert box.is_top_level and not inner.is_top_level

    def test_elements_registered(self, registry):
        box = registry.structural_attribute("box")
        width = registry.lookup_element(box, "width", "")
        assert width is not None
        assert width.value_type is ValueType.FLOAT

    def test_leaf_attribute_gets_own_element(self, registry):
        leaf = registry.structural_attribute("leaf")
        assert registry.lookup_element(leaf, "leaf", "") is not None

    def test_dynamic_host_has_no_structural_children(self, registry):
        dyn = registry.structural_attribute("dyn")
        assert registry.children_of(dyn) == []

    def test_schema_order_recorded(self, registry, schema):
        box = registry.structural_attribute("box")
        assert box.schema_order == schema.attribute_by_tag("box").order

    def test_ids_unique_and_dense(self, registry):
        ids = sorted(d.attr_id for d in registry.all_attributes())
        assert ids == list(range(1, len(ids) + 1))


class TestDynamicDefinitions:
    def test_define_and_lookup(self, registry):
        grid = registry.define_attribute("grid", "ARPS", host="dyn")
        assert registry.lookup_attribute("grid", "ARPS") is grid

    def test_source_required(self, registry):
        with pytest.raises(DefinitionError, match="source"):
            registry.define_attribute("grid", "", host="dyn")

    def test_name_required(self, registry):
        with pytest.raises(DefinitionError):
            registry.define_attribute("", "ARPS", host="dyn")

    def test_host_must_be_dynamic(self, registry):
        with pytest.raises(DefinitionError, match="dynamic"):
            registry.define_attribute("grid", "ARPS", host="box")

    def test_same_name_different_sources_coexist(self, registry):
        arps = registry.define_attribute("grid", "ARPS", host="dyn")
        wrf = registry.define_attribute("grid", "WRF", host="dyn")
        assert arps.attr_id != wrf.attr_id
        assert registry.lookup_attribute("grid", "WRF") is wrf

    def test_duplicate_rejected(self, registry):
        registry.define_attribute("grid", "ARPS", host="dyn")
        with pytest.raises(DefinitionError, match="already defined"):
            registry.define_attribute("grid", "ARPS", host="dyn")

    def test_sub_attribute_under_parent(self, registry):
        grid = registry.define_attribute("grid", "ARPS", host="dyn")
        sub = registry.define_attribute("stretch", "ARPS", host="dyn", parent=grid)
        assert sub.parent_id == grid.attr_id
        assert registry.lookup_attribute("stretch", "ARPS", parent=grid) is sub

    def test_dynamic_elements(self, registry):
        grid = registry.define_attribute("grid", "ARPS", host="dyn")
        dx = registry.define_element(grid, "dx", "ARPS", ValueType.FLOAT)
        assert registry.lookup_element(grid, "dx", "ARPS") is dx

    def test_duplicate_element_rejected(self, registry):
        grid = registry.define_attribute("grid", "ARPS", host="dyn")
        registry.define_element(grid, "dx", "ARPS")
        with pytest.raises(DefinitionError, match="already defined"):
            registry.define_element(grid, "dx", "ARPS")

    def test_element_lookup_requires_exact_source(self, registry):
        grid = registry.define_attribute("grid", "ARPS", host="dyn")
        registry.define_element(grid, "dx", "ARPS")
        assert registry.lookup_element(grid, "dx", "WRF") is None


class TestUserScopes:
    def test_private_definition_invisible_to_others(self, registry):
        registry.define_attribute("secret", "ARPS", host="dyn", user="ann")
        assert registry.lookup_attribute("secret", "ARPS") is None
        assert registry.lookup_attribute("secret", "ARPS", user="bob") is None
        assert registry.lookup_attribute("secret", "ARPS", user="ann") is not None

    def test_user_definition_wins_over_admin(self, registry):
        admin = registry.define_attribute("grid", "ARPS", host="dyn")
        mine = registry.define_attribute("grid", "ARPS", host="dyn", user="ann")
        assert registry.lookup_attribute("grid", "ARPS", user="ann") is mine
        assert registry.lookup_attribute("grid", "ARPS") is admin

    def test_visible_to_includes_admin_and_own(self, registry):
        registry.define_attribute("mine", "ARPS", host="dyn", user="ann")
        registry.define_attribute("theirs", "ARPS", host="dyn", user="bob")
        visible_names = {d.name for d in registry.visible_to("ann")}
        assert "mine" in visible_names
        assert "theirs" not in visible_names
        assert "box" in visible_names


class TestLookupErrors:
    def test_unknown_attribute_id(self, registry):
        with pytest.raises(DefinitionError):
            registry.attribute(9999)

    def test_unknown_element_id(self, registry):
        with pytest.raises(DefinitionError):
            registry.element(9999)

    def test_len_counts_attributes(self, registry):
        before = len(registry)
        registry.define_attribute("extra", "SRC", host="dyn")
        assert len(registry) == before + 1
