"""Unit tests for incremental attribute insertion/removal (paper §5:
attributes may be inserted after the original shred; schema-level
ordering makes the append free)."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery
from repro.errors import CatalogError, ShredError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import canonical, parse

NEW_THEME = (
    "<theme><themekt>CF</themekt><themekey>late_added_key</themekey></theme>"
)

NEW_GRID = """
<detailed>
  <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
  <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>250</attrv></attr>
  <attr>
    <attrlabl>grid-stretching</attrlabl><attrdefs>ARPS</attrdefs>
    <attr><attrlabl>dzmin</attrlabl><attrdefs>ARPS</attrdefs><attrv>25</attrv></attr>
  </attr>
</detailed>
"""


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request):
    store = SqliteHybridStore() if request.param == "sqlite" else None
    cat = HybridCatalog(lead_schema(), store=store)
    define_fig3_attributes(cat)
    cat.ingest(FIG3_DOCUMENT, name="fig3")
    return cat


def theme_key_query(key):
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", key)
    )


class TestAddAttribute:
    def test_new_instance_queryable(self, catalog):
        catalog.add_attribute(1, NEW_THEME)
        assert catalog.query(theme_key_query("late_added_key")) == [1]

    def test_sequence_continues(self, catalog):
        receipt = catalog.add_attribute(1, NEW_THEME)
        assert receipt.clob_count == 1
        theme_def = catalog.registry.structural_attribute("theme")
        counts = catalog.store.instance_counts(1)
        assert counts[theme_def.attr_id] == 3  # two original + one new

    def test_appears_in_schema_position(self, catalog):
        """The new theme lands inside <keywords>, after the existing
        instances — schema order + same-sibling sequence."""
        catalog.add_attribute(1, NEW_THEME)
        response = catalog.fetch([1])[1]
        assert response.index("air_pressure_at_cloud_top") < response.index(
            "late_added_key"
        )
        assert response.index("late_added_key") < response.index("</keywords>")

    def test_existing_rows_untouched(self, catalog):
        before = {
            (row[1], row[2])
            for row in _clob_keys(catalog)
        }
        catalog.add_attribute(1, NEW_THEME)
        after = {
            (row[1], row[2])
            for row in _clob_keys(catalog)
        }
        assert before < after
        assert len(after - before) == 1

    def test_dynamic_fragment(self, catalog):
        catalog.add_attribute(1, NEW_GRID)
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 250)
        )
        assert catalog.query(query) == [1]
        # The nested sub-attribute also landed with correct ancestry.
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 250)
        crit.add_attribute(
            AttributeCriteria("grid-stretching", "ARPS").add_element("dzmin", None, 25)
        )
        assert catalog.query(ObjectQuery().add_attribute(crit)) == [1]

    def test_attribute_on_absent_section(self, catalog):
        """Adding an attribute whose wrapper did not exist before: the
        wrapper appears in the response afterwards."""
        catalog.add_attribute(
            1, "<status><progress>Complete</progress><update>None</update></status>"
        )
        response = catalog.fetch([1])[1]
        assert "<status>" in response
        assert response.index("<status>") < response.index("<keywords>")

    def test_non_repeatable_second_instance_rejected(self, catalog):
        with pytest.raises(ShredError, match="single instance"):
            catalog.add_attribute(1, "<resourceID>other</resourceID>")

    def test_non_attribute_fragment_rejected(self, catalog):
        with pytest.raises(CatalogError, match="not a metadata attribute"):
            catalog.add_attribute(1, "<keywords/>")

    def test_unknown_object_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_attribute(99, NEW_THEME)


class TestRemoveAttribute:
    def test_remove_hides_from_queries(self, catalog):
        catalog.remove_attribute(1, "theme", seq=2)
        assert catalog.query(theme_key_query("air_pressure_at_cloud_base")) == []
        assert catalog.query(theme_key_query("convective_precipitation_flux")) == [1]

    def test_remove_drops_clob_from_response(self, catalog):
        catalog.remove_attribute(1, "theme", seq=2)
        response = catalog.fetch([1])[1]
        assert "air_pressure_at_cloud_base" not in response
        assert "convective_precipitation_amount" in response

    def test_remove_dynamic_removes_descendants(self, catalog):
        catalog.remove_attribute(1, "grid", "ARPS", seq=1)
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid-stretching", "ARPS").add_element(
                "dzmin", None, 100
            )
        )
        assert catalog.query(query) == []
        assert "grid-stretching" not in catalog.fetch([1])[1]

    def test_remove_unknown_instance(self, catalog):
        with pytest.raises(CatalogError):
            catalog.remove_attribute(1, "theme", seq=9)

    def test_remove_sub_attribute_rejected(self, catalog):
        with pytest.raises(CatalogError, match="top-level"):
            catalog.remove_attribute(1, "grid-stretching", "ARPS", seq=1)

    def test_remove_unknown_definition(self, catalog):
        with pytest.raises(CatalogError, match="definition"):
            catalog.remove_attribute(1, "never", "NOWHERE")

    def test_add_after_remove_roundtrip(self, catalog):
        catalog.remove_attribute(1, "theme", seq=1)
        catalog.add_attribute(1, NEW_THEME)
        assert catalog.query(theme_key_query("late_added_key")) == [1]
        response = catalog.fetch([1])[1]
        assert canonical(parse(response))  # still well-formed


def _clob_keys(catalog):
    """(object, order, seq) rows from either backend."""
    store = catalog.store
    if hasattr(store, "db"):
        return list(store.db.table("clobs").lookup(["object_id"], [1]))
    return store.connection.execute(
        "SELECT object_id, schema_order, clob_seq FROM clobs WHERE object_id = 1"
    ).fetchall()
