"""Unit tests for the catalog integrity checker (fsck)."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import HybridCatalog
from repro.core.integrity import check_catalog
from repro.grid import (
    FIG3_DOCUMENT,
    CorpusConfig,
    LeadCorpusGenerator,
    define_fig3_attributes,
    lead_schema,
)


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request):
    store = SqliteHybridStore() if request.param == "sqlite" else None
    cat = HybridCatalog(lead_schema(), store=store)
    define_fig3_attributes(cat)
    cat.ingest(FIG3_DOCUMENT, name="fig3")
    return cat


def corrupt(catalog, sql, memory_fn):
    """Apply a corruption to either backend."""
    store = catalog.store
    if hasattr(store, "db"):
        memory_fn(store.db)
    else:
        store.connection.execute(sql)
        store.connection.commit()


class TestHealthyCatalogs:
    def test_fig3_clean(self, catalog):
        assert check_catalog(catalog, deep=True) == []

    def test_generated_corpus_clean(self):
        config = CorpusConfig(seed=8, dynamic_depth=3)
        generator = LeadCorpusGenerator(config)
        cat = HybridCatalog(lead_schema())
        generator.register_definitions(cat)
        cat.ingest_many(list(generator.documents(8)))
        assert check_catalog(cat, deep=True) == []

    def test_after_incremental_maintenance(self, catalog):
        catalog.add_attribute(
            1, "<theme><themekt>CF</themekt><themekey>late</themekey></theme>"
        )
        catalog.remove_attribute(1, "theme", seq=1)
        assert check_catalog(catalog, deep=True) == []

    def test_store_only_content_is_legal(self):
        """Lenient validation leaves CLOBs without shredded rows — not a
        violation (paper §3)."""
        cat = HybridCatalog(lead_schema())  # no dynamic definitions
        cat.ingest(FIG3_DOCUMENT)
        assert check_catalog(cat, deep=True) == []


class TestCorruptionDetection:
    def test_dangling_object_reference(self, catalog):
        corrupt(
            catalog,
            "UPDATE clobs SET object_id = 99 "
            "WHERE rowid = (SELECT MIN(rowid) FROM clobs)",
            lambda db: _memory_update(db, "clobs", 0, 99),
        )
        violations = check_catalog(catalog)
        assert any("missing object 99" in v for v in violations)

    def test_missing_clob_for_top_instance(self, catalog):
        corrupt(
            catalog,
            "DELETE FROM clobs WHERE schema_order = "
            "(SELECT MIN(schema_order) FROM clobs)",
            lambda db: _memory_delete_first(db, "clobs"),
        )
        violations = check_catalog(catalog)
        assert any("has no CLOB" in v for v in violations)

    def test_unknown_schema_order_in_clob(self, catalog):
        corrupt(
            catalog,
            "UPDATE clobs SET schema_order = 999 "
            "WHERE rowid = (SELECT MIN(rowid) FROM clobs)",
            lambda db: _memory_update(db, "clobs", 1, 999),
        )
        violations = check_catalog(catalog)
        assert any("global-ordering table" in v for v in violations)

    def test_element_without_instance(self, catalog):
        corrupt(
            catalog,
            "UPDATE elements SET seq_id = 77 "
            "WHERE rowid = (SELECT MIN(rowid) FROM elements)",
            lambda db: _memory_update(db, "elements", 2, 77),
        )
        violations = check_catalog(catalog)
        assert any("missing attribute instance" in v for v in violations)

    def test_missing_self_row(self, catalog):
        corrupt(
            catalog,
            "DELETE FROM attr_ancestors WHERE distance = 0",
            lambda db: _memory_delete_where(db, "attr_ancestors", 5, 0),
        )
        violations = check_catalog(catalog)
        assert any("self row" in v for v in violations)

    def test_unknown_definition(self, catalog):
        corrupt(
            catalog,
            "UPDATE attributes SET attr_id = 4242 "
            "WHERE rowid = (SELECT MIN(rowid) FROM attributes)",
            lambda db: _memory_update(db, "attributes", 1, 4242),
        )
        violations = check_catalog(catalog)
        assert any("missing definition 4242" in v for v in violations)

    def test_malformed_clob_detected_in_deep_mode(self, catalog):
        corrupt(
            catalog,
            "UPDATE clobs SET content = '<broken' "
            "WHERE rowid = (SELECT MIN(rowid) FROM clobs)",
            lambda db: _memory_update(db, "clobs", 3, "<broken"),
        )
        assert check_catalog(catalog) == []  # shallow check passes
        violations = check_catalog(catalog, deep=True)
        assert any("not" in v and "well-formed" in v for v in violations)

    def test_mismatched_clob_tag(self, catalog):
        corrupt(
            catalog,
            "UPDATE clobs SET content = '<wrong/>' "
            "WHERE rowid = (SELECT MIN(rowid) FROM clobs)",
            lambda db: _memory_update(db, "clobs", 3, "<wrong/>"),
        )
        violations = check_catalog(catalog, deep=True)
        assert any("does not match schema node" in v for v in violations)


# -- memory-store corruption helpers ------------------------------------

def _memory_update(db, table_name, column_index, value):
    """Corrupt the first row only (mirrors the MIN(rowid) SQL form)."""
    table = db.table(table_name)
    rows = table.rows()
    table.clear()
    for i, row in enumerate(rows):
        mutated = list(row)
        if i == 0:
            mutated[column_index] = value
        table.insert(mutated)


def _memory_delete_first(db, table_name):
    table = db.table(table_name)
    rows = table.rows()
    table.clear()
    for row in rows[1:]:
        table.insert(row)


def _memory_delete_where(db, table_name, column_index, value):
    table = db.table(table_name)
    rows = [r for r in table.rows() if r[column_index] != value]
    table.clear()
    for row in rows:
        table.insert(row)
