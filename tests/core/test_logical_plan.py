"""Unit tests for the logical plan IR, optimizer ordering, and plan cache.

The key regression here is staleness: a plan cached before a delete,
attribute removal, or definition change must never be served again —
every mutation that can change plan validity bumps the statistics
generation, and the cache treats a generation mismatch as a miss.
"""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import (
    AttributeCriteria,
    HybridCatalog,
    ObjectQuery,
    Op,
    PlanCache,
    build_plan,
    plan_shape,
)
from repro.core.schema import ValueType
from repro.grid import lead_schema
from repro.xmlkit import element, pretty_print


def make_doc(rid, themekeys=(), grids=()):
    keywords = element("keywords")
    if themekeys:
        theme = element("theme", element("themekt", "CF"))
        for key in themekeys:
            theme.append(element("themekey", key))
        keywords.append(theme)
    idinfo = element("idinfo", keywords) if themekeys else element("idinfo")
    eainfo = element("eainfo")
    for grid in grids:
        detailed = element(
            "detailed",
            element("enttyp", element("enttypl", "grid"), element("enttypds", "ARPS")),
        )
        for key, value in grid.items():
            detailed.append(
                element(
                    "attr",
                    element("attrlabl", key),
                    element("attrdefs", "ARPS"),
                    element("attrv", str(value)),
                )
            )
        eainfo.append(detailed)
    return pretty_print(
        element(
            "LEADresource",
            element("resourceID", rid),
            element("data", idinfo, element("geospatial", eainfo)),
        )
    )


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request):
    store = SqliteHybridStore() if request.param == "sqlite" else None
    cat = HybridCatalog(lead_schema(), store=store)
    grid = cat.define_attribute("grid", "ARPS")
    cat.define_element(grid, "nx", "ARPS", ValueType.FLOAT)
    cat.define_element(grid, "dx", "ARPS", ValueType.FLOAT)
    for i in range(8):
        cat.ingest(
            make_doc(
                f"doc-{i}",
                themekeys=["rain"] if i % 2 == 0 else ["wind"],
                grids=[{"nx": 50 + i, "dx": 1000.0}],
            )
        )
    return cat


def grid_query(nx_floor=50, dx=1000.0):
    query = ObjectQuery()
    crit = AttributeCriteria("grid", "ARPS")
    crit.add_element("nx", "ARPS", nx_floor, Op.GE)
    crit.add_element("dx", "ARPS", dx, Op.EQ)
    query.add_attribute(crit)
    return query


class TestBuildPlan:
    def test_unoptimized_plan_keeps_shredding_order(self, catalog):
        shredded = catalog.shred_query(grid_query())
        plan = build_plan(shredded)
        assert [s.qelem_id for s in plan.seeks] == [e.qelem_id for e in shredded.qelems]
        assert all(s.est_rows is None for s in plan.seeks)
        assert plan.stats_generation is None

    def test_optimizer_orders_seeks_most_selective_first(self, catalog):
        # nx values are all distinct (8 rows, 8 values -> est 1 per EQ-ish
        # op); dx is the same value in every row (est 8).  The GE on nx
        # divides rows by 3, still far below the EQ on the constant dx.
        shredded = catalog.shred_query(grid_query())
        plan = build_plan(shredded, catalog.stats)
        ests = [s.est_rows for s in plan.seeks]
        assert ests == sorted(ests)
        nx_seek = plan.seeks[0]
        dx_seek = plan.seeks[1]
        assert nx_seek.est_rows < dx_seek.est_rows

    def test_estimates_do_not_change_results(self, catalog):
        query = grid_query(nx_floor=54)
        shredded = catalog.shred_query(query)
        unopt = catalog.store.match_objects(build_plan(shredded))
        opt = catalog.store.match_objects(build_plan(shredded, catalog.stats))
        assert unopt == opt == catalog.query(query)

    def test_rebind_shares_stages_but_not_actuals(self, catalog):
        shredded = catalog.shred_query(grid_query())
        plan = build_plan(shredded, catalog.stats)
        catalog.store.match_objects(plan)
        assert plan.actuals
        rebound = plan.rebind(catalog.shred_query(grid_query(nx_floor=99)))
        assert rebound.seeks is plan.seeks
        assert rebound.actuals == {}

    def test_describe_lists_every_stage(self, catalog):
        explanation = catalog.explain(grid_query())
        text = explanation.describe()
        assert "ObjectIntersect" in text
        assert "DirectCountMatch" in text
        assert text.count("ElementSeek") == 2
        assert "est~" in text and "actual=" in text


class TestPlanShape:
    def test_same_template_different_literals_share_shape(self, catalog):
        a = catalog.shred_query(grid_query(nx_floor=50))
        b = catalog.shred_query(grid_query(nx_floor=55))
        assert plan_shape(a) == plan_shape(b)

    def test_different_operator_changes_shape(self, catalog):
        query = ObjectQuery()
        crit = AttributeCriteria("grid", "ARPS")
        crit.add_element("nx", "ARPS", 50, Op.LE)
        crit.add_element("dx", "ARPS", 1000.0, Op.EQ)
        query.add_attribute(crit)
        assert plan_shape(catalog.shred_query(query)) != plan_shape(
            catalog.shred_query(grid_query())
        )

    def test_in_set_width_is_part_of_the_shape(self, catalog):
        def themed(values):
            query = ObjectQuery()
            query.add_attribute(
                AttributeCriteria("theme").add_element(
                    "themekey", "", values, Op.IN_SET
                )
            )
            return catalog.shred_query(query)

        assert plan_shape(themed({"rain"})) != plan_shape(themed({"rain", "wind"}))


class TestPlanCache:
    def test_second_query_hits(self, catalog):
        catalog.query(grid_query(nx_floor=50))
        hits_before = catalog.plan_cache.hits
        catalog.query(grid_query(nx_floor=53))  # same shape, new literal
        assert catalog.plan_cache.hits == hits_before + 1

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cat = HybridCatalog(lead_schema())

        def plan_for_theme(name):
            query = ObjectQuery()
            query.add_attribute(
                AttributeCriteria("theme").add_element("themekey", "", name, Op.EQ)
            )
            # Different CONTAINS/EQ mixes give distinct shapes.
            return build_plan(cat.shred_query(query))

        plans = []
        for op in (Op.EQ, Op.NE, Op.CONTAINS):
            query = ObjectQuery()
            query.add_attribute(
                AttributeCriteria("theme").add_element("themekey", "", "x", op)
            )
            plans.append(build_plan(cat.shred_query(query)))
        for plan in plans:
            cache.store(plan)
        assert len(cache) == 2
        assert cache.lookup(plans[0].shape, None) is None  # evicted
        assert cache.lookup(plans[2].shape, None) is plans[2]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_metrics_expose_hit_and_miss_counters(self, catalog):
        catalog.query(grid_query())
        catalog.query(grid_query())
        registry = catalog.store.metrics_registry()
        assert "plan_cache_hits_total" in registry
        assert "plan_cache_misses_total" in registry
        assert "plan_cache_size" in registry
        assert registry.get("plan_cache_hits_total").value >= 1
        assert registry.get("plan_cache_misses_total").value >= 1


class TestStalePlanRegression:
    """A cached plan must never survive a mutation that can change what
    it returns."""

    def test_delete_invalidates_cached_plan(self, catalog):
        query = grid_query(nx_floor=50)
        before = catalog.query(query)
        assert before  # plan now cached
        catalog.delete(before[0])
        after = catalog.query(query)
        assert before[0] not in after
        assert catalog.explain(query).cache_hit is False or before[0] not in after

    def test_remove_attribute_invalidates_cached_plan(self, catalog):
        query = ObjectQuery()
        query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "rain", Op.EQ)
        )
        before = catalog.query(query)
        assert before
        victim = before[0]
        catalog.remove_attribute(victim, "theme", "")
        after = catalog.query(query)
        assert victim not in after

    def test_definition_change_invalidates_cached_plan(self, catalog):
        # Cache a plan for a theme query, then define a new element on
        # the same attribute: qelem/def ids shift, so a stale plan could
        # seek the wrong definition.  The generation bump forces a
        # rebuild and the query stays correct.
        theme_query = ObjectQuery()
        theme_query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "rain", Op.EQ)
        )
        expected = catalog.query(theme_query)
        gen_before = catalog.stats.generation
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        catalog.define_element(grid, "ny", "ARPS", ValueType.FLOAT)
        assert catalog.stats.generation > gen_before
        explanation = catalog.explain(theme_query)
        assert explanation.cache_hit is False
        assert explanation.object_ids == expected

    def test_generation_mismatch_is_a_cache_miss(self, catalog):
        shredded = catalog.shred_query(grid_query())
        plan, hit = catalog.plan_for(shredded)
        assert hit is False
        catalog.stats.invalidate()
        _plan2, hit2 = catalog.plan_for(shredded)
        assert hit2 is False

    def test_incremental_ingest_keeps_cache_warm(self, catalog):
        """Plain ingest only *adds* rows; cached plans stay valid (they
        re-bind literals and re-run estimates are advisory)."""
        query = grid_query()
        catalog.query(query)
        catalog.ingest(make_doc("doc-extra", grids=[{"nx": 70, "dx": 1000.0}]))
        explanation = catalog.explain(query)
        assert explanation.cache_hit is True
