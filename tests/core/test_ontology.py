"""Unit tests for ontology-enhanced search (paper §3)."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import (
    AttributeCriteria,
    HybridCatalog,
    ObjectQuery,
    Ontology,
    Op,
    expand_query,
    shred_query,
)
from repro.errors import QueryError
from repro.grid import CorpusConfig, LeadCorpusGenerator, cf_ontology, lead_schema


@pytest.fixture()
def onto():
    o = Ontology("test")
    o.add_term("precipitation", synonyms=["rainfall"])
    o.add_term("rain_amount", broader="precipitation")
    o.add_term("snow_amount", synonyms=["snowfall"], broader="precipitation")
    o.add_term("weather")
    return o


class TestOntologyGraph:
    def test_canonical_resolves_synonyms(self, onto):
        assert onto.canonical("rainfall") == "precipitation"
        assert onto.canonical("precipitation") == "precipitation"
        assert onto.canonical("nope") is None

    def test_expand_includes_synonyms_and_narrower(self, onto):
        expanded = onto.expand("precipitation")
        assert expanded == {
            "precipitation", "rainfall", "rain_amount", "snow_amount", "snowfall",
        }

    def test_expand_without_narrower(self, onto):
        assert onto.expand("precipitation", include_narrower=False) == {
            "precipitation", "rainfall",
        }

    def test_expand_via_synonym(self, onto):
        assert "rain_amount" in onto.expand("rainfall")

    def test_synonyms_of(self, onto):
        assert onto.synonyms_of("precipitation") == {"rainfall"}
        assert onto.synonyms_of("rainfall") == {"rainfall"}  # via canonical
        assert onto.synonyms_of("unknown") == set()

    def test_unknown_term_expands_to_itself(self, onto):
        assert onto.expand("mystery") == {"mystery"}

    def test_narrower_closure_transitive(self, onto):
        onto.add_term("drizzle_amount", broader="rain_amount")
        assert "drizzle_amount" in onto.narrower_closure("precipitation")

    def test_cycle_rejected(self, onto):
        with pytest.raises(ValueError, match="cycle"):
            onto.add_term("precipitation", broader="rain_amount")

    def test_self_broader_rejected(self, onto):
        with pytest.raises(ValueError):
            onto.add_term("x", broader="x")

    def test_synonym_collision_rejected(self, onto):
        with pytest.raises(ValueError, match="already belongs"):
            onto.add_term("weather", synonyms=["rainfall"])

    def test_empty_term_rejected(self, onto):
        with pytest.raises(ValueError):
            onto.add_term("")

    def test_len_counts_canonical_terms(self, onto):
        assert len(onto) == 4


class TestQueryExpansion:
    def test_eq_on_known_term_becomes_in_set(self, onto):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "precipitation")
        )
        expanded = expand_query(query, onto)
        criterion = expanded.attributes[0].elements[0]
        assert criterion.op is Op.IN_SET
        assert "rain_amount" in criterion.value

    def test_unknown_terms_untouched(self, onto):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "obscure")
        )
        expanded = expand_query(query, onto)
        criterion = expanded.attributes[0].elements[0]
        assert criterion.op is Op.EQ and criterion.value == "obscure"

    def test_numeric_criteria_untouched(self, onto):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000, Op.GE)
        )
        expanded = expand_query(query, onto)
        assert expanded.attributes[0].elements[0].op is Op.GE

    def test_sub_attributes_expanded_recursively(self, onto):
        top = AttributeCriteria("grid", "ARPS")
        sub = AttributeCriteria("tags", "ARPS").add_element("kw", "ARPS", "rainfall")
        top.add_attribute(sub)
        expanded = expand_query(ObjectQuery().add_attribute(top), onto)
        assert expanded.attributes[0].sub_attributes[0].elements[0].op is Op.IN_SET

    def test_original_query_not_mutated(self, onto):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "precipitation")
        )
        expand_query(query, onto)
        assert query.attributes[0].elements[0].op is Op.EQ

    def test_empty_query_rejected(self, onto):
        with pytest.raises(QueryError):
            expand_query(ObjectQuery(), onto)

    def test_term_with_no_expansion_stays_eq(self):
        onto = Ontology()
        onto.add_term("lonely")
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "lonely")
        )
        expanded = expand_query(query, onto)
        assert expanded.attributes[0].elements[0].op is Op.EQ


class TestInSetEndToEnd:
    @pytest.fixture(params=["memory", "sqlite"])
    def catalog(self, request):
        store = SqliteHybridStore() if request.param == "sqlite" else None
        cat = HybridCatalog(lead_schema(), store=store)
        gen = LeadCorpusGenerator(CorpusConfig(seed=5, themes=2, keys_per_theme=4))
        gen.register_definitions(cat)
        cat.ingest_many(list(gen.documents(15)))
        return cat

    def test_expanded_equals_union_of_equalities(self, catalog):
        onto = cf_ontology()
        narrow = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "precipitation")
        )
        expanded = expand_query(narrow, onto)
        expected = set()
        for term in onto.expand("precipitation"):
            q = ObjectQuery().add_attribute(
                AttributeCriteria("theme").add_element("themekey", "", term)
            )
            expected |= set(catalog.query(q))
        assert set(catalog.query(expanded)) == expected
        assert expected  # the corpus does contain precipitation variables

    def test_in_set_numeric(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element(
                "nx", "ARPS", [10, 20, 30, 40, 50], Op.IN_SET
            )
        )
        result = catalog.query(query)
        manual = set()
        for v in (10, 20, 30, 40, 50):
            q = ObjectQuery().add_attribute(
                AttributeCriteria("grid", "ARPS").add_element("nx", "ARPS", v)
            )
            manual |= set(catalog.query(q))
        assert set(result) == manual

    def test_in_set_shredding_validation(self, catalog):
        with pytest.raises(QueryError, match="no values"):
            shred_query(
                ObjectQuery().add_attribute(
                    AttributeCriteria("theme").add_element(
                        "themekey", "", [], Op.IN_SET
                    )
                ),
                catalog.registry,
            )
        with pytest.raises(QueryError, match="iterable"):
            shred_query(
                ObjectQuery().add_attribute(
                    AttributeCriteria("grid", "ARPS").add_element(
                        "nx", "ARPS", 5, Op.IN_SET
                    )
                ),
                catalog.registry,
            )
        with pytest.raises(QueryError, match="non-numeric"):
            shred_query(
                ObjectQuery().add_attribute(
                    AttributeCriteria("grid", "ARPS").add_element(
                        "nx", "ARPS", ["a"], Op.IN_SET
                    )
                ),
                catalog.registry,
            )


class TestCfOntology:
    def test_builds_and_covers_generator_vocabulary(self):
        from repro.grid import CF_STANDARD_NAMES

        onto = cf_ontology()
        known = sum(1 for name in CF_STANDARD_NAMES if onto.knows(name))
        assert known == len(CF_STANDARD_NAMES) - len(
            [n for n in CF_STANDARD_NAMES if not onto.knows(n)]
        )
        # Every top category expands to at least two concrete variables.
        for category in ("precipitation", "pressure", "temperature", "wind"):
            assert len(onto.expand(category)) >= 3

    def test_everything_under_the_root_category(self):
        onto = cf_ontology()
        closure = onto.narrower_closure("atmospheric_variable")
        assert "tornado_probability" in closure
        assert "air_pressure_at_cloud_base" in closure
