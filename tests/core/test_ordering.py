"""Unit tests for schema-level global ordering and the [19] ablations."""

import pytest

from repro.core import (
    AnnotatedSchema,
    DeweyOrdering,
    GlobalDocumentOrdering,
    LocalOrdering,
    SchemaLevelOrdering,
    ancestor_pairs,
    attribute,
    melement,
    structural,
    sub_attribute,
)
from repro.xmlkit import element, parse


@pytest.fixture()
def nested_schema():
    return AnnotatedSchema(
        structural(
            "root",
            attribute("first"),
            structural(
                "mid",
                attribute("a", melement("x"), repeatable=True),
                structural("deep", attribute("b", melement("y"))),
            ),
            attribute("last"),
        )
    )


class TestGlobalOrder:
    def test_preorder_numbers(self, nested_schema):
        tags = {n.tag: n.order for n in nested_schema.ordered_nodes}
        assert tags == {"root": 1, "first": 2, "mid": 3, "a": 4, "deep": 5, "b": 6, "last": 7}

    def test_attribute_last_child_is_self(self, nested_schema):
        a = nested_schema.attribute_by_tag("a")
        assert a.last_child_order == a.order

    def test_structural_last_child_spans_subtree(self, nested_schema):
        mid = nested_schema.node_by_order(3)
        assert mid.tag == "mid"
        assert mid.last_child_order == 6

    def test_root_last_child_is_max_order(self, nested_schema):
        assert nested_schema.root.last_child_order == 7

    def test_nodes_inside_attributes_not_ordered(self, nested_schema):
        a = nested_schema.attribute_by_tag("a")
        x = a.find_child("x")
        assert x.order is None

    def test_ordering_deterministic_across_builds(self):
        def build():
            return AnnotatedSchema(
                structural("root", attribute("p"), structural("m", attribute("q")))
            )

        first = [(n.tag, n.order, n.last_child_order) for n in build().ordered_nodes]
        second = [(n.tag, n.order, n.last_child_order) for n in build().ordered_nodes]
        assert first == second


class TestAncestorPairs:
    def test_pairs(self, nested_schema):
        pairs = set(ancestor_pairs(nested_schema.ordered_nodes))
        assert (6, 5) in pairs  # b -> deep
        assert (6, 3) in pairs  # b -> mid
        assert (6, 1) in pairs  # b -> root
        assert (1, 1) not in pairs  # root has no ancestors

    def test_pair_count(self, nested_schema):
        # root:0 first:1 mid:1 a:2 deep:2 b:3 last:1 -> 10
        assert len(ancestor_pairs(nested_schema.ordered_nodes)) == 10


@pytest.fixture()
def doc():
    return parse(
        "<root><a><x>1</x></a><a><x>2</x></a><b><y><z>3</z></y></b></root>"
    ).root


class TestGlobalDocumentOrdering:
    def test_assign_preorder(self, doc):
        keys = GlobalDocumentOrdering().assign(doc)
        assert keys[id(doc)] == (1,)
        flat = sorted(keys.values())
        assert flat == [(i,) for i in range(1, 9)]

    def test_insert_at_front_renumbers_everything_after(self, doc):
        cost = GlobalDocumentOrdering().insert_cost(doc, doc, 0)
        assert cost == 7  # all elements except the root

    def test_append_at_end_costs_zero(self, doc):
        cost = GlobalDocumentOrdering().insert_cost(doc, doc, 3)
        assert cost == 0

    def test_insert_mid_siblings(self, doc):
        cost = GlobalDocumentOrdering().insert_cost(doc, doc, 1)
        assert cost == 5  # second <a> subtree (2) + <b> subtree (3)


class TestLocalAndDewey:
    def test_local_keys_are_sibling_paths(self, doc):
        keys = LocalOrdering().assign(doc)
        first_a = doc.child_elements()[0]
        assert keys[id(first_a)] == (1, 1)
        z = doc.child_elements()[2].child_elements()[0].child_elements()[0]
        assert keys[id(z)] == (1, 3, 1, 1)

    def test_local_insert_cost_counts_following_subtrees(self, doc):
        cost = LocalOrdering().insert_cost(doc, doc, 0)
        assert cost == 2 + 2 + 3

    def test_dewey_matches_local_semantics(self, doc):
        assert DeweyOrdering().assign(doc) == LocalOrdering().assign(doc)
        assert DeweyOrdering().insert_cost(doc, doc, 1) == LocalOrdering().insert_cost(doc, doc, 1)


class TestSchemaLevelOrdering:
    def test_keys_use_schema_order_and_sequence(self, nested_schema):
        document = parse(
            "<root><first>v</first><mid><a><x>1</x></a><a><x>2</x></a></mid></root>"
        ).root
        ordering = SchemaLevelOrdering(nested_schema)
        keys = ordering.assign(document)
        mid = document.find("mid")
        first_a, second_a = mid.find_all("a")
        assert keys[id(first_a)] == (4, 1)
        assert keys[id(second_a)] == (4, 2)
        assert keys[id(document)] == (1, 0)
        # Content inside attribute CLOBs carries no keys.
        assert id(first_a.find("x")) not in keys

    def test_total_order_matches_document_order(self, nested_schema):
        document = parse(
            "<root><first>v</first><mid><a><x>1</x></a><a><x>2</x></a>"
            "<deep><b><y>3</y></b></deep></mid><last>w</last></root>"
        ).root
        keys = SchemaLevelOrdering(nested_schema).assign(document)
        keyed = [e for e in document.iter() if id(e) in keys]
        sort_keys = [keys[id(e)] for e in keyed]
        assert sort_keys == sorted(sort_keys)

    def test_append_costs_zero(self, nested_schema):
        document = parse("<root><mid><a><x>1</x></a></mid></root>").root
        mid = document.find("mid")
        ordering = SchemaLevelOrdering(nested_schema)
        assert ordering.insert_cost(document, mid, 1) == 0

    def test_middle_insert_renumbers_only_same_tag_siblings(self, nested_schema):
        document = parse(
            "<root><mid><a><x>1</x></a><a><x>2</x></a></mid></root>"
        ).root
        mid = document.find("mid")
        ordering = SchemaLevelOrdering(nested_schema)
        assert ordering.insert_cost(document, mid, 0) == 2

    def test_update_cost_strictly_below_document_orderings(self, nested_schema):
        """The paper's claim: schema-level ordering avoids the update
        costs of per-document total orderings."""
        document = parse(
            "<root><mid>"
            + "".join(f"<a><x>{i}</x></a>" for i in range(10))
            + "</mid></root>"
        ).root
        mid = document.find("mid")
        schema_cost = SchemaLevelOrdering(nested_schema).insert_cost(document, mid, 5)
        global_cost = GlobalDocumentOrdering().insert_cost(document, mid, 5)
        dewey_cost = DeweyOrdering().insert_cost(document, mid, 5)
        assert schema_cost < global_cost
        assert schema_cost < dewey_cost
