"""Unit tests for the partition-rule validator (paper §2 rules R2-R5,
consistency constraints C1-C3)."""

import pytest

from repro.core import (
    AnnotatedSchema,
    DynamicSpec,
    NodeKind,
    SchemaNode,
    attribute,
    melement,
    structural,
    sub_attribute,
)
from repro.errors import SchemaError


def build(root):
    return AnnotatedSchema(root)


class TestValidSchemas:
    def test_minimal(self):
        build(structural("root", attribute("a")))

    def test_nested_sub_attributes(self):
        build(
            structural(
                "root",
                attribute(
                    "a",
                    melement("x"),
                    sub_attribute("s", melement("y"), sub_attribute("t", melement("z"))),
                ),
            )
        )

    def test_repeatable_attribute_allowed(self):
        build(structural("root", attribute("a", melement("x"), repeatable=True)))

    def test_repeatable_element_inside_attribute_allowed(self):
        build(structural("root", attribute("a", melement("x", repeatable=True))))

    def test_dynamic_on_attribute_allowed(self):
        build(structural("root", attribute("d", dynamic=DynamicSpec())))

    def test_xml_attributes_on_element_allowed(self):
        build(structural("root", attribute("a", melement("x", has_xml_attributes=True))))


class TestRootRules:
    def test_root_must_be_structural(self):
        with pytest.raises(SchemaError, match="root"):
            build(attribute("root", melement("x")))

    def test_root_cannot_be_repeatable(self):
        with pytest.raises(SchemaError, match="repeatable"):
            build(structural("root", attribute("a"), repeatable=True))


class TestRuleR2Repeatable:
    def test_repeatable_structural_rejected(self):
        with pytest.raises(SchemaError, match="R2"):
            build(
                structural(
                    "root",
                    structural("seq", attribute("a"), repeatable=True),
                )
            )


class TestRuleR3XmlAttributes:
    def test_structural_with_xml_attributes_rejected(self):
        node = structural("holder", attribute("a"))
        node.has_xml_attributes = True
        with pytest.raises(SchemaError, match="R3"):
            build(structural("root", node))


class TestRuleR4Dynamic:
    def test_dynamic_on_element_rejected(self):
        leaf = melement("x")
        leaf.dynamic = DynamicSpec()
        with pytest.raises(SchemaError, match="R4"):
            build(structural("root", attribute("a", leaf)))


class TestRuleR5Leaves:
    def test_structural_leaf_rejected(self):
        with pytest.raises(SchemaError, match="R5"):
            build(structural("root", structural("empty")))


class TestConsistency:
    def test_attribute_inside_attribute_rejected(self):
        inner = attribute("inner", melement("x"))
        with pytest.raises(SchemaError, match="C1"):
            build(structural("root", SchemaNode("outer", NodeKind.ATTRIBUTE, [inner])))

    def test_structural_inside_attribute_rejected(self):
        inner = structural("wrap", attribute("a"))
        with pytest.raises(SchemaError, match="C2"):
            build(structural("root", SchemaNode("outer", NodeKind.ATTRIBUTE, [inner])))

    def test_element_outside_attribute_rejected(self):
        with pytest.raises(SchemaError, match="R5/C2"):
            build(structural("root", melement("stray"), attribute("a")))

    def test_sub_attribute_outside_attribute_rejected(self):
        sub = sub_attribute("s", melement("x"))
        with pytest.raises(SchemaError, match="R5/C2"):
            build(structural("root", sub, attribute("a")))

    def test_element_with_children_rejected(self):
        bad = SchemaNode("x", NodeKind.ELEMENT, [melement("y")])
        with pytest.raises(SchemaError, match="C3"):
            build(structural("root", SchemaNode("a", NodeKind.ATTRIBUTE, [bad])))

    def test_shared_node_rejected(self):
        shared = melement("x")
        a = attribute("a", shared)
        b = SchemaNode("b", NodeKind.ATTRIBUTE, [shared])  # steals parent pointer
        with pytest.raises(SchemaError, match="parent pointer"):
            build(structural("root", a, b))

    def test_non_queryable_only_on_attributes(self):
        bad = melement("x")
        bad.queryable = False
        with pytest.raises(SchemaError, match="queryable"):
            build(structural("root", attribute("a", bad)))

    def test_non_queryable_attribute_allowed(self):
        build(structural("root", attribute("a", melement("x"), queryable=False)))
