"""Unit tests for the Fig-4 count-matching planner (memory store)."""

import pytest

from repro.core import (
    AttributeCriteria,
    HybridCatalog,
    ObjectQuery,
    Op,
    PlanTrace,
)
from repro.grid import lead_schema
from repro.core.schema import ValueType
from repro.xmlkit import element, pretty_print


def make_doc(rid, themekeys=(), grids=()):
    """A minimal LEAD document with given theme keywords and ARPS grid
    parameter dicts (each possibly with a nested 'sub' dict)."""
    keywords = element("keywords")
    if themekeys:
        theme = element("theme", element("themekt", "CF"))
        for key in themekeys:
            theme.append(element("themekey", key))
        keywords.append(theme)
    idinfo = element("idinfo", keywords) if themekeys else element("idinfo")
    eainfo = element("eainfo")
    for grid in grids:
        detailed = element(
            "detailed",
            element("enttyp", element("enttypl", "grid"), element("enttypds", "ARPS")),
        )
        for key, value in grid.items():
            if key == "sub":
                sub = element(
                    "attr",
                    element("attrlabl", "stretch"),
                    element("attrdefs", "ARPS"),
                )
                for sk, sv in value.items():
                    sub.append(
                        element(
                            "attr",
                            element("attrlabl", sk),
                            element("attrdefs", "ARPS"),
                            element("attrv", str(sv)),
                        )
                    )
                detailed.append(sub)
            else:
                detailed.append(
                    element(
                        "attr",
                        element("attrlabl", key),
                        element("attrdefs", "ARPS"),
                        element("attrv", str(value)),
                    )
                )
        eainfo.append(detailed)
    return pretty_print(
        element(
            "LEADresource",
            element("resourceID", rid),
            element("data", idinfo, element("geospatial", eainfo)),
        )
    )


@pytest.fixture()
def catalog():
    cat = HybridCatalog(lead_schema())
    grid = cat.define_attribute("grid", "ARPS")
    cat.define_element(grid, "dx", "ARPS", ValueType.FLOAT)
    cat.define_element(grid, "dz", "ARPS", ValueType.FLOAT)
    stretch = cat.define_attribute("stretch", "ARPS", parent=grid)
    cat.define_element(stretch, "dzmin", "ARPS", ValueType.FLOAT)
    cat.ingest(make_doc("o1", ["rain", "hail"], [{"dx": 1000, "dz": 500}]))
    cat.ingest(make_doc("o2", ["rain"], [{"dx": 2000, "sub": {"dzmin": 100}}]))
    cat.ingest(make_doc("o3", ["snow"], [{"dx": 1000, "sub": {"dzmin": 50}}]))
    cat.ingest(make_doc("o4", [], [{"dx": 1000}, {"dx": 3000, "sub": {"dzmin": 100}}]))
    return cat


def q(attr):
    return ObjectQuery().add_attribute(attr)


class TestSingleAttribute:
    def test_string_equality(self, catalog):
        crit = AttributeCriteria("theme").add_element("themekey", "", "rain")
        assert catalog.query(q(crit)) == [1, 2]

    def test_numeric_equality(self, catalog):
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        assert catalog.query(q(crit)) == [1, 3, 4]

    def test_numeric_range(self, catalog):
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1500, Op.GE)
        assert catalog.query(q(crit)) == [2, 4]

    def test_contains(self, catalog):
        crit = AttributeCriteria("theme").add_element("themekey", "", "ai", Op.CONTAINS)
        assert catalog.query(q(crit)) == [1, 2]  # hail, rain both contain "ai"

    def test_no_match(self, catalog):
        crit = AttributeCriteria("theme").add_element("themekey", "", "fog")
        assert catalog.query(q(crit)) == []

    def test_existence_only(self, catalog):
        crit = AttributeCriteria("theme")
        assert catalog.query(q(crit)) == [1, 2, 3]

    def test_leaf_attribute_value(self, catalog):
        crit = AttributeCriteria("resourceID").add_element("resourceID", "", "o2")
        assert catalog.query(q(crit)) == [2]


class TestMultipleDirectElements:
    def test_both_must_match_same_instance(self, catalog):
        crit = (
            AttributeCriteria("grid", "ARPS")
            .add_element("dx", "ARPS", 1000)
            .add_element("dz", "ARPS", 500)
        )
        assert catalog.query(q(crit)) == [1]

    def test_count_matching_requires_distinct_criteria(self, catalog):
        """Two criteria satisfied by the same single element value must
        not double-count: dx=1000 and dx>=999 are two distinct criteria
        both matched by one element — instance qualifies."""
        crit = (
            AttributeCriteria("grid", "ARPS")
            .add_element("dx", "ARPS", 1000)
            .add_element("dx", "ARPS", 999, Op.GE)
        )
        assert catalog.query(q(crit)) == [1, 3, 4]

    def test_criteria_not_satisfiable_across_instances(self, catalog):
        """Object 4 has dx=1000 in one instance and dzmin=100 in another;
        requiring them in one attribute tree must not match o4's split."""
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        sub = AttributeCriteria("stretch", "ARPS").add_element("dzmin", "ARPS", 100)
        crit.add_attribute(sub)
        assert catalog.query(q(crit)) == []


class TestSubAttributes:
    def test_paper_shape_query(self, catalog):
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 2000)
        sub = AttributeCriteria("stretch", "ARPS").add_element("dzmin", "ARPS", 100)
        crit.add_attribute(sub)
        assert catalog.query(q(crit)) == [2]

    def test_sub_attribute_value_filters(self, catalog):
        crit = AttributeCriteria("grid", "ARPS")
        sub = AttributeCriteria("stretch", "ARPS").add_element("dzmin", "ARPS", 50)
        crit.add_attribute(sub)
        assert catalog.query(q(crit)) == [3]

    def test_sub_attribute_existence(self, catalog):
        crit = AttributeCriteria("grid", "ARPS")
        crit.add_attribute(AttributeCriteria("stretch", "ARPS"))
        assert catalog.query(q(crit)) == [2, 3, 4]


class TestConjunction:
    def test_two_top_attributes_intersect(self, catalog):
        query = ObjectQuery()
        query.add_attribute(AttributeCriteria("theme").add_element("themekey", "", "rain"))
        query.add_attribute(AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000))
        assert catalog.query(query) == [1]

    def test_empty_intersection_short_circuits(self, catalog):
        query = ObjectQuery()
        query.add_attribute(AttributeCriteria("theme").add_element("themekey", "", "fog"))
        query.add_attribute(AttributeCriteria("grid", "ARPS"))
        trace = PlanTrace()
        assert catalog.query(query, trace=trace) == []


class TestPlanTrace:
    def test_stages_in_figure_order(self, catalog):
        trace = PlanTrace()
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        catalog.query(q(crit), trace=trace)
        assert trace.stage_names() == [
            "query-criteria",
            "elements-meeting-criteria",
            "attributes-direct",
            "attributes-indirect",
            "object-ids",
        ]

    def test_row_counts_recorded(self, catalog):
        trace = PlanTrace()
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        catalog.query(q(crit), trace=trace)
        rows = {s.name: s.rows for s in trace.stages}
        assert rows["elements-meeting-criteria"] == 3  # one dx=1000 in o1, o3, o4
        assert rows["object-ids"] == 3

    def test_describe_renders(self, catalog):
        trace = PlanTrace()
        catalog.query(q(AttributeCriteria("theme")), trace=trace)
        text = trace.describe()
        assert "object-ids" in text and "rows" in text
