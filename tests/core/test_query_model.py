"""Unit tests for the query model and query shredding (paper §4)."""

import pytest

from repro.core import (
    MYEQUAL,
    MYGREATEREQUAL,
    AttributeCriteria,
    MyAttr,
    MyFile,
    ObjectQuery,
    Op,
    shred_query,
)
from repro.errors import QueryError
from repro.grid import define_fig3_attributes, lead_schema


@pytest.fixture()
def registry():
    from repro.core import DefinitionRegistry

    class _Cat:
        def __init__(self, schema):
            self.registry = DefinitionRegistry(schema)

        def define_attribute(self, *args, **kwargs):
            return self.registry.define_attribute(*args, **kwargs)

        def define_element(self, *args, **kwargs):
            return self.registry.define_element(*args, **kwargs)

    cat = _Cat(lead_schema())
    define_fig3_attributes(cat)
    return cat.registry


def paper_query():
    """The §4 example: grid dx=1000 with grid-stretching dzmin=100."""
    query = MyFile()
    grid = MyAttr("grid", "ARPS")
    grid.add_element("dx", "ARPS", 1000, MYEQUAL)
    stretching = MyAttr("grid-stretching", "ARPS")
    stretching.add_element("dzmin", None, 100, MYEQUAL)
    grid.add_attribute(stretching)
    query.add_attribute(grid)
    return query


class TestOp:
    def test_eq(self):
        assert Op.EQ.matches(5, 5)
        assert not Op.EQ.matches(5, 6)

    def test_contains(self):
        assert Op.CONTAINS.matches("precipitation_flux", "precip")

    def test_none_never_matches(self):
        for op in Op:
            assert not op.matches(None, 1)

    def test_incomparable_types_false_not_error(self):
        assert not Op.LT.matches("abc", 5)

    def test_paper_aliases(self):
        assert MYEQUAL is Op.EQ
        assert MYGREATEREQUAL is Op.GE


class TestQueryBuilding:
    def test_add_element_inherits_source(self):
        attr = AttributeCriteria("grid-stretching", "ARPS")
        attr.add_element("dzmin", None, 100)
        assert attr.elements[0].source == "ARPS"

    def test_add_element_explicit_source(self):
        attr = AttributeCriteria("grid", "ARPS")
        attr.add_element("dx", "OTHER", 1)
        assert attr.elements[0].source == "OTHER"

    def test_fluent_chaining(self):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "rain")
        )
        assert len(query.attributes) == 1

    def test_bad_op_rejected(self):
        with pytest.raises(QueryError):
            AttributeCriteria("a").add_element("x", "", 1, op="=")

    def test_empty_query_flag(self):
        assert ObjectQuery().is_empty()


class TestQueryShredding:
    def test_paper_example_counts(self, registry):
        shredded = shred_query(paper_query(), registry)
        assert len(shredded.qattrs) == 2
        assert len(shredded.qelems) == 2
        top = shredded.qattr(shredded.top_qattr_ids[0])
        assert top.direct_elem_count == 1
        assert top.subtree_elem_count == 2
        assert top.subtree_attr_count == 2

    def test_depths_assigned(self, registry):
        shredded = shred_query(paper_query(), registry)
        assert [q.depth for q in shredded.qattrs] == [0, 1]
        assert shredded.max_depth() == 1

    def test_child_links(self, registry):
        shredded = shred_query(paper_query(), registry)
        top = shredded.qattr(1)
        assert top.child_qattr_ids == [2]
        assert shredded.qattr(2).parent_qattr_id == 1

    def test_numeric_value_coerced(self, registry):
        shredded = shred_query(paper_query(), registry)
        dx = shredded.qelems[0]
        assert dx.numeric and dx.value_num == 1000.0 and dx.value_text is None

    def test_string_element_kept_as_text(self, registry):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "rain")
        )
        shredded = shred_query(query, registry)
        assert not shredded.qelems[0].numeric
        assert shredded.qelems[0].value_text == "rain"

    def test_empty_query_rejected(self, registry):
        with pytest.raises(QueryError, match="no attribute criteria"):
            shred_query(ObjectQuery(), registry)

    def test_unknown_attribute_rejected(self, registry):
        query = ObjectQuery().add_attribute(AttributeCriteria("nope", "NOWHERE"))
        with pytest.raises(QueryError, match="no attribute definition"):
            shred_query(query, registry)

    def test_unknown_element_rejected(self, registry):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("bogus", "ARPS", 1)
        )
        with pytest.raises(QueryError, match="no element definition"):
            shred_query(query, registry)

    def test_non_numeric_value_on_numeric_element_rejected(self, registry):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", "wide")
        )
        with pytest.raises(QueryError, match="non-numeric"):
            shred_query(query, registry)

    def test_contains_on_numeric_rejected(self, registry):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 10, Op.CONTAINS)
        )
        with pytest.raises(QueryError, match="CONTAINS"):
            shred_query(query, registry)

    def test_private_definition_enforced(self, registry):
        registry.define_attribute("private", "ARPS", host="detailed", user="ann")
        query = ObjectQuery().add_attribute(AttributeCriteria("private", "ARPS"))
        with pytest.raises(QueryError):
            shred_query(query, registry)  # anonymous caller
        shred_query(query, registry, user="ann")  # owner succeeds

    def test_non_queryable_attribute_rejected(self, registry):
        registry.define_attribute("hidden", "ARPS", host="detailed", queryable=False)
        query = ObjectQuery().add_attribute(AttributeCriteria("hidden", "ARPS"))
        with pytest.raises(QueryError, match="not queryable"):
            shred_query(query, registry)

    def test_leaf_attribute_query_by_own_name(self, registry):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("resourceID").add_element("resourceID", "", "x")
        )
        shredded = shred_query(query, registry)
        assert shredded.qattrs[0].direct_elem_count == 1

    def test_describe_output(self, registry):
        text = shred_query(paper_query(), registry).describe()
        assert "qattr 1" in text and "qelem" in text
