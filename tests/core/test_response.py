"""Unit tests for set-based response construction (paper §5)."""

import pytest

from repro.core import (
    AnnotatedSchema,
    HybridCatalog,
    attribute,
    melement,
    structural,
)
from repro.xmlkit import canonical, parse


@pytest.fixture()
def schema():
    return AnnotatedSchema(
        structural(
            "root",
            attribute("first"),
            structural(
                "left",
                attribute("a", melement("x"), repeatable=True),
            ),
            structural(
                "right",
                structural("deep", attribute("b", melement("y"))),
            ),
        )
    )


@pytest.fixture()
def catalog(schema):
    return HybridCatalog(schema)


class TestReconstruction:
    def test_full_document_roundtrip(self, catalog):
        doc = (
            "<root><first>v</first>"
            "<left><a><x>1</x></a><a><x>2</x></a></left>"
            "<right><deep><b><y>3</y></b></deep></right></root>"
        )
        oid = catalog.ingest(doc).object_id
        rebuilt = catalog.fetch([oid])[oid]
        assert canonical(parse(rebuilt)) == canonical(parse(doc))

    def test_optional_sections_omitted(self, catalog):
        """Ancestors appear only when needed: a document without the
        'right' branch must not emit <right> or <deep> wrappers."""
        doc = "<root><left><a><x>1</x></a></left></root>"
        oid = catalog.ingest(doc).object_id
        rebuilt = catalog.fetch([oid])[oid]
        assert "<right>" not in rebuilt
        assert "<deep>" not in rebuilt
        assert canonical(parse(rebuilt)) == canonical(parse(doc))

    def test_instance_order_preserved(self, catalog):
        doc = "<root><left><a><x>z</x></a><a><x>a</x></a></left></root>"
        oid = catalog.ingest(doc).object_id
        rebuilt = catalog.fetch([oid])[oid]
        assert rebuilt.index("<x>z</x>") < rebuilt.index("<x>a</x>")

    def test_clob_text_verbatim(self, catalog):
        doc = "<root><left><a>\n    <x>  spaced  </x>\n  </a></left></root>"
        oid = catalog.ingest(doc).object_id
        rebuilt = catalog.fetch([oid])[oid]
        assert "<x>  spaced  </x>" in rebuilt

    def test_multiple_objects_independent(self, catalog):
        a = catalog.ingest("<root><first>1</first></root>").object_id
        b = catalog.ingest("<root><left><a><x>2</x></a></left></root>").object_id
        responses = catalog.fetch([a, b])
        assert "<first>1</first>" in responses[a]
        assert "<left>" not in responses[a]
        assert "<left>" in responses[b]

    def test_unknown_object_silently_absent(self, catalog):
        oid = catalog.ingest("<root><first>1</first></root>").object_id
        responses = catalog.fetch([oid, 999])
        assert set(responses) == {oid}

    def test_response_is_wellformed(self, catalog):
        doc = (
            "<root><first>a &amp; b</first>"
            "<left><a><x>&lt;tag&gt;</x></a></left></root>"
        )
        oid = catalog.ingest(doc).object_id
        rebuilt = parse(catalog.fetch([oid])[oid])
        assert rebuilt.root.tag == "root"

    def test_fetch_in_search_matches_ingested(self, catalog):
        from repro.core import AttributeCriteria, ObjectQuery

        doc = "<root><first>findme</first></root>"
        catalog.ingest(doc)
        query = ObjectQuery().add_attribute(
            AttributeCriteria("first").add_element("first", "", "findme")
        )
        results = catalog.search(query)
        assert len(results) == 1
        assert canonical(parse(results[0])) == canonical(parse(doc))


class TestTagPlacement:
    def test_close_tags_nest_correctly(self, catalog):
        doc = (
            "<root><left><a><x>1</x></a></left>"
            "<right><deep><b><y>2</y></b></deep></right></root>"
        )
        oid = catalog.ingest(doc).object_id
        rebuilt = catalog.fetch([oid])[oid]
        assert rebuilt.index("</left>") < rebuilt.index("<right>")
        assert rebuilt.index("</deep>") < rebuilt.index("</right>")
        assert rebuilt.endswith("</root>")

    def test_root_always_wraps(self, catalog):
        oid = catalog.ingest("<root><first>x</first></root>").object_id
        rebuilt = catalog.fetch([oid])[oid]
        assert rebuilt.startswith("<root>")
        assert rebuilt.endswith("</root>")


class TestEmptyObjects:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_object_with_no_attributes_yields_empty_root(self, schema, backend):
        from repro.backends import SqliteHybridStore

        store = SqliteHybridStore() if backend == "sqlite" else None
        catalog = HybridCatalog(schema, store=store)
        oid = catalog.ingest("<root></root>").object_id
        assert catalog.fetch([oid])[oid] == "<root></root>"
