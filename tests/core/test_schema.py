"""Unit tests for the annotated schema model."""

import pytest

from repro.core import (
    AnnotatedSchema,
    DynamicSpec,
    NodeKind,
    ValueType,
    attribute,
    melement,
    structural,
    sub_attribute,
)
from repro.errors import SchemaError


def tiny_schema():
    return AnnotatedSchema(
        structural(
            "root",
            attribute("leafattr"),
            structural(
                "mid",
                attribute(
                    "box",
                    melement("width", value_type=ValueType.FLOAT),
                    melement("label"),
                    sub_attribute("inner", melement("depth", value_type=ValueType.INTEGER)),
                    repeatable=True,
                ),
            ),
        ),
        name="tiny",
    )


class TestConstructors:
    def test_leaf_attribute_is_element(self):
        node = attribute("resourceID")
        assert node.is_element and node.is_attribute

    def test_interior_attribute_not_element(self):
        node = attribute("status", melement("progress"))
        assert not node.is_element

    def test_sub_attribute_requires_children(self):
        with pytest.raises(SchemaError):
            sub_attribute("empty")

    def test_children_get_parent_pointers(self):
        child = melement("x")
        parent = attribute("a", child)
        assert child.parent is parent


class TestNavigation:
    def test_path(self):
        schema = tiny_schema()
        box = schema.attribute_by_tag("box")
        assert box.path() == "root/mid/box"

    def test_ancestors(self):
        schema = tiny_schema()
        box = schema.attribute_by_tag("box")
        assert [n.tag for n in box.ancestors()] == ["mid", "root"]

    def test_enclosing_attribute_of_element(self):
        schema = tiny_schema()
        box = schema.attribute_by_tag("box")
        width = box.find_child("width")
        assert width.enclosing_attribute() is box

    def test_enclosing_attribute_of_structural_is_none(self):
        schema = tiny_schema()
        assert schema.root.enclosing_attribute() is None

    def test_iter_preorder(self):
        schema = tiny_schema()
        tags = [n.tag for n in schema.iter_nodes()]
        assert tags == ["root", "leafattr", "mid", "box", "width", "label", "inner", "depth"]


class TestAnnotatedSchema:
    def test_ordered_nodes_stop_at_attributes(self):
        schema = tiny_schema()
        assert [n.tag for n in schema.ordered_nodes] == ["root", "leafattr", "mid", "box"]

    def test_node_by_order(self):
        schema = tiny_schema()
        assert schema.node_by_order(1).tag == "root"
        with pytest.raises(SchemaError):
            schema.node_by_order(99)

    def test_attributes_in_order(self):
        schema = tiny_schema()
        assert [n.tag for n in schema.attributes()] == ["leafattr", "box"]

    def test_attribute_by_tag_missing(self):
        assert tiny_schema().attribute_by_tag("zzz") is None

    def test_duplicate_attribute_tags_rejected(self):
        with pytest.raises(SchemaError, match="appears twice"):
            AnnotatedSchema(
                structural(
                    "root",
                    structural("a", attribute("dup")),
                    structural("b", attribute("dup")),
                )
            )

    def test_describe_mentions_kinds_and_orders(self):
        text = tiny_schema().describe()
        assert "[ATTRIBUTE]" in text
        assert "#1" in text
        assert "repeatable" in text
        assert "<element>" in text

    def test_max_order(self):
        assert tiny_schema().max_order() == 4


class TestValueType:
    def test_string_strips(self):
        assert ValueType.STRING.parse("  hi  ") == "hi"

    def test_integer(self):
        assert ValueType.INTEGER.parse("42") == 42
        with pytest.raises(ValueError):
            ValueType.INTEGER.parse("4.2")

    def test_float(self):
        assert ValueType.FLOAT.parse("1000.000") == 1000.0
        with pytest.raises(ValueError):
            ValueType.FLOAT.parse("abc")

    def test_date_normalizes(self):
        assert ValueType.DATE.parse("2006-7-4") == "2006-07-04"

    @pytest.mark.parametrize("bad", ["2006-13-01", "2006-00-10", "2006-01-32", "20060704", "2006/07/04"])
    def test_date_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            ValueType.DATE.parse(bad)


class TestDynamicSpec:
    def test_defaults_match_lead_convention(self):
        spec = DynamicSpec()
        assert spec.entity_tag == "enttyp"
        assert spec.name_tag == "enttypl"
        assert spec.source_tag == "enttypds"
        assert spec.item_tag == "attr"
        assert spec.label_tag == "attrlabl"
        assert spec.defs_tag == "attrdefs"
        assert spec.value_tag == "attrv"

    def test_custom_tags(self):
        spec = DynamicSpec(entity_tag="head", name_tag="n", source_tag="s",
                           item_tag="p", label_tag="k", defs_tag="d", value_tag="v")
        assert spec.item_tag == "p"
