"""Unit tests for the hybrid shredder (paper §3)."""

import pytest

from repro.core import (
    AnnotatedSchema,
    DefinitionRegistry,
    DynamicSpec,
    Shredder,
    ValueType,
    attribute,
    infer_value_type,
    melement,
    structural,
    sub_attribute,
)
from repro.errors import ShredError, ValidationError
from repro.xmlkit import parse


@pytest.fixture()
def schema():
    return AnnotatedSchema(
        structural(
            "root",
            attribute("rid", required=True),
            structural(
                "body",
                attribute(
                    "box",
                    melement("width", value_type=ValueType.FLOAT),
                    melement("label"),
                    sub_attribute("inner", melement("depth", value_type=ValueType.INTEGER)),
                    repeatable=True,
                ),
                attribute("note", melement("text")),
            ),
            attribute("dyn", dynamic=DynamicSpec(), repeatable=True),
        )
    )


@pytest.fixture()
def registry(schema):
    r = DefinitionRegistry(schema)
    grid = r.define_attribute("grid", "ARPS", host="dyn")
    r.define_element(grid, "dx", "ARPS", ValueType.FLOAT)
    stretch = r.define_attribute("stretch", "ARPS", host="dyn", parent=grid)
    r.define_element(stretch, "dzmin", "ARPS", ValueType.FLOAT)
    return r


@pytest.fixture()
def shredder(schema, registry):
    return Shredder(schema, registry)


DOC = """
<root>
  <rid>object-1</rid>
  <body>
    <box><width>2.5</width><label>first</label>
         <inner><depth>3</depth></inner></box>
    <box><width>4.0</width></box>
    <note><text>hello</text></note>
  </body>
  <dyn>
    <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>
    <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>1000.0</attrv></attr>
    <attr><attrlabl>stretch</attrlabl><attrdefs>ARPS</attrdefs>
      <attr><attrlabl>dzmin</attrlabl><attrdefs>ARPS</attrdefs><attrv>100</attrv></attr>
    </attr>
  </dyn>
</root>
"""


class TestStructuralShredding:
    def test_clob_per_attribute_instance(self, shredder):
        result = shredder.shred(parse(DOC))
        # rid, box x2, note, dyn
        assert len(result.clobs) == 5

    def test_clobs_are_verbatim(self, shredder):
        result = shredder.shred(parse(DOC))
        box_clobs = [c for c in result.clobs if c.text.startswith("<box>")]
        assert "<width>2.5</width>" in box_clobs[0].text

    def test_same_sibling_clob_sequence(self, shredder, schema):
        result = shredder.shred(parse(DOC))
        box_order = schema.attribute_by_tag("box").order
        seqs = sorted(c.clob_seq for c in result.clobs if c.schema_order == box_order)
        assert seqs == [1, 2]

    def test_attribute_instances(self, shredder, registry):
        result = shredder.shred(parse(DOC))
        box_def = registry.structural_attribute("box")
        boxes = [a for a in result.attributes if a.attr_id == box_def.attr_id]
        assert [a.seq_id for a in boxes] == [1, 2]

    def test_element_values_typed(self, shredder, registry):
        result = shredder.shred(parse(DOC))
        box_def = registry.structural_attribute("box")
        width_def = registry.lookup_element(box_def, "width", "")
        widths = [e for e in result.elements if e.elem_id == width_def.elem_id]
        assert sorted(e.value_num for e in widths) == [2.5, 4.0]

    def test_element_sequence_local_to_instance(self, shredder, registry):
        result = shredder.shred(parse(DOC))
        box_def = registry.structural_attribute("box")
        first_box = [
            e for e in result.elements
            if e.attr_id == box_def.attr_id and e.seq_id == 1
        ]
        assert [e.elem_seq for e in first_box] == [1, 2]

    def test_leaf_attribute_value_shredded(self, shredder, registry):
        result = shredder.shred(parse(DOC))
        rid_def = registry.structural_attribute("rid")
        values = [e.value_text for e in result.elements if e.attr_id == rid_def.attr_id]
        assert values == ["object-1"]

    def test_structural_sub_attribute_instance_and_inverted(self, shredder, registry):
        result = shredder.shred(parse(DOC))
        box_def = registry.structural_attribute("box")
        inner_def = registry.lookup_attribute("inner", "", parent=box_def)
        inner_rows = [a for a in result.attributes if a.attr_id == inner_def.attr_id]
        assert len(inner_rows) == 1
        links = [
            i for i in result.inverted
            if i.desc_attr_id == inner_def.attr_id and i.distance == 1
        ]
        assert len(links) == 1
        assert links[0].anc_attr_id == box_def.attr_id

    def test_self_rows_distance_zero(self, shredder, registry):
        result = shredder.shred(parse(DOC))
        box_def = registry.structural_attribute("box")
        selfs = [
            i for i in result.inverted
            if i.desc_attr_id == box_def.attr_id and i.distance == 0
        ]
        assert len(selfs) == 2


class TestDynamicShredding:
    def test_definition_resolved_by_name_and_source(self, shredder, registry):
        result = shredder.shred(parse(DOC))
        grid = registry.lookup_attribute("grid", "ARPS")
        assert any(a.attr_id == grid.attr_id for a in result.attributes)

    def test_recursion_disappears(self, shredder, registry):
        """The nested attr becomes a flat sub-attribute instance plus
        inverted-list rows — no recursive structure in the output."""
        result = shredder.shred(parse(DOC))
        grid = registry.lookup_attribute("grid", "ARPS")
        stretch = registry.lookup_attribute("stretch", "ARPS", parent=grid)
        links = [
            i for i in result.inverted
            if i.desc_attr_id == stretch.attr_id and i.anc_attr_id == grid.attr_id
        ]
        assert [l.distance for l in links] == [1]

    def test_dynamic_element_values(self, shredder, registry):
        result = shredder.shred(parse(DOC))
        grid = registry.lookup_attribute("grid", "ARPS")
        dx = registry.lookup_element(grid, "dx", "ARPS")
        assert [e.value_num for e in result.elements if e.elem_id == dx.elem_id] == [1000.0]

    def test_item_with_value_and_children_rejected(self, shredder):
        bad = DOC.replace(
            "<attr><attrlabl>dzmin</attrlabl><attrdefs>ARPS</attrdefs><attrv>100</attrv></attr>",
            "<attr><attrlabl>dzmin</attrlabl><attrdefs>ARPS</attrdefs><attrv>100</attrv></attr>"
            "<attrv>5</attrv>",
        )
        with pytest.raises(ShredError, match="both a value and nested"):
            shredder.shred(parse(bad))


class TestValidationPolicies:
    UNKNOWN_DYN = """
    <root><rid>x</rid>
      <dyn>
        <enttyp><enttypl>mystery</enttypl><enttypds>NOWHERE</enttypds></enttyp>
        <attr><attrlabl>p</attrlabl><attrdefs>NOWHERE</attrdefs><attrv>1</attrv></attr>
      </dyn>
    </root>
    """

    def test_store_policy_keeps_clob_skips_rows(self, schema, registry):
        shredder = Shredder(schema, registry, on_unknown="store")
        result = shredder.shred(parse(self.UNKNOWN_DYN))
        dyn_order = schema.attribute_by_tag("dyn").order
        assert any(c.schema_order == dyn_order for c in result.clobs)
        assert all(a.attr_id != 0 for a in result.attributes)
        assert len(result.warnings) == 1
        grid_like = [a for a in result.attributes]
        assert len(grid_like) == 1  # only rid

    def test_reject_policy_raises(self, schema, registry):
        shredder = Shredder(schema, registry, on_unknown="reject")
        with pytest.raises(ValidationError, match="not defined"):
            shredder.shred(parse(self.UNKNOWN_DYN))

    def test_define_policy_auto_registers(self, schema, registry):
        shredder = Shredder(schema, registry, on_unknown="define")
        result = shredder.shred(parse(self.UNKNOWN_DYN))
        assert not result.warnings
        assert registry.lookup_attribute("mystery", "NOWHERE") is not None
        assert [d.name for d in result.defined] == ["mystery"]

    def test_define_policy_infers_types(self, schema, registry):
        shredder = Shredder(schema, registry, on_unknown="define")
        shredder.shred(parse(self.UNKNOWN_DYN))
        mystery = registry.lookup_attribute("mystery", "NOWHERE")
        p = registry.lookup_element(mystery, "p", "NOWHERE")
        assert p.value_type is ValueType.INTEGER

    def test_invalid_policy_name(self, schema, registry):
        with pytest.raises(ValueError):
            Shredder(schema, registry, on_unknown="panic")

    def test_bad_value_stored_not_shredded(self, schema, registry):
        doc = DOC.replace("<width>2.5</width>", "<width>not-a-number</width>")
        shredder = Shredder(schema, registry, on_unknown="store")
        result = shredder.shred(parse(doc))
        assert any("not a valid float" in w for w in result.warnings)

    def test_bad_value_rejected_in_strict(self, schema, registry):
        doc = DOC.replace("<width>2.5</width>", "<width>not-a-number</width>")
        shredder = Shredder(schema, registry, on_unknown="reject")
        with pytest.raises(ValidationError):
            shredder.shred(parse(doc))


class TestStructureErrors:
    def test_wrong_root(self, shredder):
        with pytest.raises(ShredError, match="root"):
            shredder.shred(parse("<other/>"))

    def test_unknown_structural_element(self, shredder):
        with pytest.raises(ShredError, match="not in the\n?.*schema|not in the schema"):
            shredder.shred(parse("<root><rid>x</rid><bogus/></root>"))

    def test_missing_required_element(self, shredder):
        with pytest.raises(ShredError, match="required"):
            shredder.shred(parse("<root><body><note><text>t</text></note></body></root>"))

    def test_cardinality_violation(self, shredder):
        with pytest.raises(ShredError, match="single instance"):
            shredder.shred(parse("<root><rid>a</rid><rid>b</rid></root>"))

    def test_text_inside_structural_element(self, shredder):
        with pytest.raises(ShredError, match="unexpected text"):
            shredder.shred(parse("<root><rid>x</rid><body>stray</body></root>"))

    def test_missing_entity_block_warns(self, schema, registry):
        doc = "<root><rid>x</rid><dyn><attr><attrlabl>p</attrlabl></attr></dyn></root>"
        result = Shredder(schema, registry).shred(parse(doc))
        assert any("entity block" in w for w in result.warnings)


class TestInferValueType:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("42", ValueType.INTEGER),
            ("-3", ValueType.INTEGER),
            ("4.2", ValueType.FLOAT),
            ("1e-3", ValueType.FLOAT),
            ("hello", ValueType.STRING),
            (".true.", ValueType.STRING),
        ],
    )
    def test_inference(self, raw, expected):
        assert infer_value_type(raw) is expected
