"""Tests for the §4 simplified plan ("If the attributes specified in the
query do not have multiple instances within a single object in the
data, or if there are not sub-attributes in the query criteria, then
the query can be significantly simplified")."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import (
    AttributeCriteria,
    HybridCatalog,
    ObjectQuery,
    Op,
    PlanTrace,
    shred_query,
)
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import element, pretty_print


def doc(rid, progress=None, title=None, themekeys=()):
    idinfo = element("idinfo")
    if progress:
        idinfo.append(
            element("status", element("progress", progress), element("update", "n"))
        )
    if title:
        idinfo.append(
            element("citation", element("origin", "LEAD"), element("title", title))
        )
    if themekeys:
        theme = element("theme", element("themekt", "CF"))
        for key in themekeys:
            theme.append(element("themekey", key))
        idinfo.append(element("keywords", theme))
    return pretty_print(
        element(
            "LEADresource",
            element("resourceID", rid),
            element("data", idinfo),
        )
    )


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request):
    store = SqliteHybridStore() if request.param == "sqlite" else None
    cat = HybridCatalog(lead_schema(), store=store)
    define_fig3_attributes(cat)
    cat.ingest(doc("o1", progress="Complete", title="alpha run"))
    cat.ingest(doc("o2", progress="In work", title="beta run"))
    cat.ingest(doc("o3", progress="Complete", themekeys=["rain"]))
    return cat


def status_query(progress):
    return ObjectQuery().add_attribute(
        AttributeCriteria("status").add_element("progress", "", progress)
    )


class TestEligibility:
    def test_single_instance_structural_is_simple(self, catalog):
        shredded = catalog.shred_query(status_query("Complete"))
        assert shredded.simple

    def test_repeatable_attribute_not_simple(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "rain")
        )
        assert not catalog.shred_query(query).simple

    def test_dynamic_attribute_not_simple(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1)
        )
        assert not catalog.shred_query(query).simple

    def test_sub_attribute_criteria_not_simple(self, catalog):
        crit = AttributeCriteria("grid", "ARPS")
        crit.add_attribute(AttributeCriteria("grid-stretching", "ARPS"))
        assert not catalog.shred_query(ObjectQuery().add_attribute(crit)).simple

    def test_leaf_attribute_is_simple(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("resourceID").add_element("resourceID", "", "o1")
        )
        assert catalog.shred_query(query).simple


class TestSimplePlanResults:
    def test_single_criterion(self, catalog):
        assert catalog.query(status_query("Complete")) == [1, 3]

    def test_multi_element_criteria_same_attribute(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("status")
            .add_element("progress", "", "Complete")
            .add_element("update", "", "n")
        )
        assert catalog.query(query) == [1, 3]

    def test_conjunction_of_simple_attributes(self, catalog):
        query = status_query("Complete")
        query.add_attribute(
            AttributeCriteria("citation").add_element("title", "", "run", Op.CONTAINS)
        )
        assert catalog.query(query) == [1]

    def test_existence_only(self, catalog):
        query = ObjectQuery().add_attribute(AttributeCriteria("citation"))
        assert catalog.query(query) == [1, 2]

    def test_no_match(self, catalog):
        assert catalog.query(status_query("Planned")) == []


class TestSimplePlanTrace:
    def test_skips_inverted_list_stage(self, catalog):
        trace = PlanTrace()
        catalog.query(status_query("Complete"), trace=trace)
        assert "attributes-indirect" not in trace.stage_names()
        assert "simplified plan" in trace.stages[0].note

    def test_general_plan_keeps_all_stages(self, catalog):
        trace = PlanTrace()
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        catalog.query(query, trace=trace)
        assert "attributes-indirect" in trace.stage_names()


class TestEquivalenceWithGeneralPlan:
    def test_forced_general_plan_agrees(self, catalog):
        """Overriding the dispatch flag must not change any answer."""
        for query in (
            status_query("Complete"),
            status_query("In work"),
            ObjectQuery().add_attribute(AttributeCriteria("citation")),
            ObjectQuery().add_attribute(
                AttributeCriteria("resourceID").add_element("resourceID", "", "o2")
            ),
        ):
            shredded = catalog.shred_query(query)
            assert shredded.simple
            simple_ids = catalog.store.match_objects(shredded)
            shredded.simple = False
            general_ids = catalog.store.match_objects(shredded)
            assert simple_ids == general_ids
