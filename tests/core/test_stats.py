"""Unit tests for the selectivity statistics layer.

Statistics order plan stages; they must stay cheap to maintain
(incremental on ingest, lazy rebuild after invalidation) and their
estimates must react to the value distributions the optimizer cares
about — without ever changing which objects a query matches.
"""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import (
    AttributeCriteria,
    CatalogStatistics,
    HybridCatalog,
    ObjectQuery,
    Op,
)
from repro.core.schema import ValueType
from repro.grid import lead_schema
from repro.xmlkit import element, pretty_print


def make_doc(rid, grids=()):
    eainfo = element("eainfo")
    for grid in grids:
        detailed = element(
            "detailed",
            element("enttyp", element("enttypl", "grid"), element("enttypds", "ARPS")),
        )
        for key, value in grid.items():
            detailed.append(
                element(
                    "attr",
                    element("attrlabl", key),
                    element("attrdefs", "ARPS"),
                    element("attrv", str(value)),
                )
            )
        eainfo.append(detailed)
    return pretty_print(
        element(
            "LEADresource",
            element("resourceID", rid),
            element("data", element("idinfo"), element("geospatial", eainfo)),
        )
    )


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request):
    store = SqliteHybridStore() if request.param == "sqlite" else None
    cat = HybridCatalog(lead_schema(), store=store)
    grid = cat.define_attribute("grid", "ARPS")
    cat.define_element(grid, "nx", "ARPS", ValueType.FLOAT)
    cat.define_element(grid, "dx", "ARPS", ValueType.FLOAT)
    for i in range(6):
        # nx takes 6 distinct values, dx always 1000.0 (1 distinct).
        cat.ingest(make_doc(f"doc-{i}", grids=[{"nx": 10 + i, "dx": 1000.0}]))
    return cat


def _elem_def(catalog, name):
    grid = catalog.registry.lookup_attribute("grid", "ARPS")
    return catalog.registry.lookup_element(grid, name, "ARPS")


class TestMaintenance:
    def test_incremental_counts_match_store_rebuild(self, catalog):
        nx = _elem_def(catalog, "nx")
        incr = (
            catalog.stats.object_count(),
            catalog.stats.element_rows(nx.elem_id),
            catalog.stats.element_distinct(nx.elem_id),
        )
        rebuilt = CatalogStatistics(catalog.store)
        rebuilt.invalidate()
        fresh = (
            rebuilt.object_count(),
            rebuilt.element_rows(nx.elem_id),
            rebuilt.element_distinct(nx.elem_id),
        )
        assert incr == fresh == (6, 6, 6)

    def test_ingest_updates_without_invalidating(self, catalog):
        gen = catalog.stats.generation
        catalog.ingest(make_doc("doc-new", grids=[{"nx": 99, "dx": 1000.0}]))
        assert catalog.stats.generation == gen
        assert catalog.stats.object_count() == 7
        nx = _elem_def(catalog, "nx")
        assert catalog.stats.element_rows(nx.elem_id) == 7

    def test_invalidate_bumps_generation_and_rebuilds_lazily(self, catalog):
        gen = catalog.stats.generation
        catalog.delete(1)
        assert catalog.stats.generation > gen
        nx = _elem_def(catalog, "nx")
        assert catalog.stats.element_rows(nx.elem_id) == 5
        assert catalog.stats.object_count() == 5

    def test_collect_statistics_snapshot_shape(self, catalog):
        snap = catalog.store.collect_statistics()
        nx = _elem_def(catalog, "nx")
        dx = _elem_def(catalog, "dx")
        assert snap.objects == 6
        assert snap.elem_rows[nx.elem_id] == 6
        assert snap.elem_distinct[nx.elem_id] == 6
        assert snap.elem_distinct[dx.elem_id] == 1
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        assert snap.attr_rows[grid.attr_id] == 6


class TestEstimates:
    def _qelem(self, catalog, name, value, op):
        query = ObjectQuery()
        crit = AttributeCriteria("grid", "ARPS")
        crit.add_element(name, "ARPS", value, op)
        query.add_attribute(crit)
        return catalog.shred_query(query).qelems[0]

    def test_eq_uses_distinct_count(self, catalog):
        unique = self._qelem(catalog, "nx", 12, Op.EQ)
        constant = self._qelem(catalog, "dx", 1000.0, Op.EQ)
        assert catalog.stats.estimate_qelem(unique) == pytest.approx(1.0)
        assert catalog.stats.estimate_qelem(constant) == pytest.approx(6.0)

    def test_ne_is_complement_of_eq(self, catalog):
        ne = self._qelem(catalog, "nx", 12, Op.NE)
        est = catalog.stats.estimate_qelem(ne)
        assert est == pytest.approx(6 * (1 - 1 / 6))

    def test_in_set_scales_with_width(self, catalog):
        narrow = self._qelem(catalog, "nx", {10}, Op.IN_SET)
        wide = self._qelem(catalog, "nx", {10, 11, 12}, Op.IN_SET)
        assert catalog.stats.estimate_qelem(wide) == pytest.approx(
            3 * catalog.stats.estimate_qelem(narrow)
        )

    def test_range_and_contains_are_fractions_of_rows(self, catalog):
        rng = self._qelem(catalog, "nx", 12, Op.GE)
        assert 0 < catalog.stats.estimate_qelem(rng) <= 6

    def test_unknown_definition_estimates_zero_rows(self, catalog):
        query = ObjectQuery()
        query.add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "x", Op.EQ)
        )
        qelem = catalog.shred_query(query).qelems[0]
        assert catalog.stats.estimate_qelem(qelem) == pytest.approx(0.0)


class TestConcurrentInvalidate:
    """Regression for the invalidate()/lazy-rebuild race: a thread
    calling ``invalidate()`` while another is mid-``_ensure()`` used to
    expose a half-built estimator (cleared dicts, partially filled
    ``_elems``).  The rebuild is now atomic — built fully in locals,
    published in one swap under the lock."""

    def test_invalidate_racing_estimates(self, catalog):
        import threading

        nx = _elem_def(catalog, "nx")
        expected_rows = catalog.stats.element_rows(nx.elem_id)
        expected_objects = catalog.stats.object_count()
        errors = []
        stop = threading.Event()

        def estimator():
            try:
                while not stop.is_set():
                    assert catalog.stats.element_rows(nx.elem_id) == expected_rows
                    assert catalog.stats.object_count() == expected_objects
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=estimator) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(200):
            catalog.stats.invalidate()
        stop.set()
        for t in threads:
            t.join()
        assert not errors, errors

    def test_invalidate_moves_the_cache_token(self, catalog):
        token = catalog.stats.cache_token()
        catalog.stats.invalidate()
        assert catalog.stats.cache_token() != token

    def test_ingest_moves_the_cache_token(self, catalog):
        token = catalog.stats.cache_token()
        catalog.ingest(make_doc("doc-token", grids=[{"nx": 40.0, "dx": 1000.0}]))
        assert catalog.stats.cache_token() != token
