"""Unit tests for the memory hybrid store's table layout."""

import pytest

from repro.core import HybridCatalog, MemoryHybridStore
from repro.errors import CatalogError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema


class TestInstall:
    def test_double_install_rejected(self, schema):
        store = MemoryHybridStore()
        store.install_schema(schema)
        with pytest.raises(CatalogError):
            store.install_schema(schema)

    def test_schema_order_table_loaded(self, schema):
        store = MemoryHybridStore()
        store.install_schema(schema)
        table = store.db.table("schema_order")
        assert len(table) == len(schema.ordered_nodes)
        root_row = table.lookup(["node_order"], [1])[0]
        assert root_row[1] == "LEADresource"
        assert root_row[2] == schema.max_order()

    def test_node_ancestors_loaded(self, schema):
        store = MemoryHybridStore()
        store.install_schema(schema)
        theme_order = schema.attribute_by_tag("theme").order
        ancestors = {
            row[1]
            for row in store.db.table("node_ancestors").lookup(
                ["node_order"], [theme_order]
            )
        }
        expected = {n.order for n in schema.attribute_by_tag("theme").ancestors()}
        assert ancestors == expected


class TestObjectRows(object):
    def test_store_rows_per_figure3(self, fig3_catalog):
        db = fig3_catalog.store.db
        assert len(db.table("objects")) == 1
        assert len(db.table("clobs")) == 4
        assert len(db.table("attributes")) == 5
        assert len(db.table("elements")) == 11

    def test_clob_never_indexed(self, fig3_catalog):
        clobs = fig3_catalog.store.db.table("clobs")
        for index in clobs._hash_indexes:
            assert "content" not in index.columns

    def test_delete_purges_all_tables(self, fig3_catalog):
        fig3_catalog.delete(1)
        db = fig3_catalog.store.db
        for name in ("objects", "clobs", "attributes", "elements", "attr_ancestors"):
            assert len(db.table(name)) == 0, name

    def test_delete_unknown_raises(self, fig3_catalog):
        with pytest.raises(CatalogError):
            fig3_catalog.store.delete_object(77)

    def test_has_object(self, fig3_catalog):
        assert fig3_catalog.store.has_object(1)
        assert not fig3_catalog.store.has_object(2)

    def test_definition_sync_idempotent(self, fig3_catalog):
        table = fig3_catalog.store.db.table("attr_defs")
        before = len(table)
        fig3_catalog.store.sync_definitions(fig3_catalog.registry)
        assert len(table) == before


class TestClose:
    """Memory backend honours the same close() contract as sqlite:
    idempotent, typed ``CatalogClosedError`` afterwards (PAR01 keeps the
    two backends' public surfaces aligned)."""

    def test_double_close_is_idempotent(self, fig3_catalog):
        fig3_catalog.store.close()
        fig3_catalog.store.close()  # must not raise

    def test_use_after_close_raises_typed_error(self, fig3_catalog):
        from repro.errors import CatalogClosedError
        from repro.grid import FIG3_DOCUMENT

        fig3_catalog.store.close()
        with pytest.raises(CatalogClosedError):
            fig3_catalog.store.has_object(1)
        with pytest.raises(CatalogClosedError):
            fig3_catalog.ingest(FIG3_DOCUMENT)

    def test_cached_query_still_raises_after_close(self, fig3_catalog):
        from repro.core import AttributeCriteria, ObjectQuery
        from repro.errors import CatalogClosedError

        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        assert fig3_catalog.query(query) == fig3_catalog.query(query)
        fig3_catalog.store.close()
        with pytest.raises(CatalogClosedError):
            fig3_catalog.query(query)
