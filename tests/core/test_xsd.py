"""Unit tests for the annotated-XSD loader (paper §7 framework)."""

import pytest

from repro.core import NodeKind, ValueType
from repro.core.xsd import load_xsd
from repro.errors import SchemaError
from repro.grid import lead_schema
from repro.grid.leadschema_xsd import LEAD_XSD, lead_schema_from_xsd

ATTR = "<xs:annotation><xs:appinfo><c:attribute/></xs:appinfo></xs:annotation>"


def wrap(body: str) -> str:
    return (
        '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" '
        'xmlns:c="urn:repro:catalog">'
        + body
        + "</xs:schema>"
    )


MINIMAL = wrap(
    f"""
    <xs:element name="root">
      <xs:complexType><xs:sequence>
        <xs:element name="label" type="xs:string">{ATTR}</xs:element>
        <xs:element name="box" minOccurs="0" maxOccurs="unbounded">
          {ATTR}
          <xs:complexType><xs:sequence>
            <xs:element name="width" type="xs:double" minOccurs="0"/>
            <xs:element name="count" type="xs:int" minOccurs="0"/>
            <xs:element name="made" type="xs:date" minOccurs="0"/>
            <xs:element name="inner" minOccurs="0">
              <xs:complexType><xs:sequence>
                <xs:element name="depth" type="xs:double" minOccurs="0"/>
              </xs:sequence></xs:complexType>
            </xs:element>
          </xs:sequence></xs:complexType>
        </xs:element>
      </xs:sequence></xs:complexType>
    </xs:element>
    """
)


class TestBasicLoading:
    def test_minimal_schema_loads(self):
        schema = load_xsd(MINIMAL)
        assert schema.root.tag == "root"
        assert [n.tag for n in schema.attributes()] == ["label", "box"]

    def test_leaf_attribute(self):
        schema = load_xsd(MINIMAL)
        label = schema.attribute_by_tag("label")
        assert label.is_element and label.kind is NodeKind.ATTRIBUTE

    def test_occurrence_mapping(self):
        schema = load_xsd(MINIMAL)
        box = schema.attribute_by_tag("box")
        assert box.repeatable and not box.required
        label = schema.attribute_by_tag("label")
        assert label.required and not label.repeatable

    def test_simple_type_mapping(self):
        schema = load_xsd(MINIMAL)
        box = schema.attribute_by_tag("box")
        types = {c.tag: c.value_type for c in box.children}
        assert types["width"] is ValueType.FLOAT
        assert types["count"] is ValueType.INTEGER
        assert types["made"] is ValueType.DATE

    def test_interior_below_attribute_is_sub_attribute(self):
        schema = load_xsd(MINIMAL)
        box = schema.attribute_by_tag("box")
        inner = box.find_child("inner")
        assert inner.kind is NodeKind.SUB_ATTRIBUTE
        assert inner.find_child("depth").kind is NodeKind.ELEMENT

    def test_global_ordering_assigned(self):
        schema = load_xsd(MINIMAL)
        assert [n.order for n in schema.ordered_nodes] == [1, 2, 3]

    def test_queryable_false_marker(self):
        text = wrap(
            """
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="hidden" type="xs:string">
                  <xs:annotation><xs:appinfo>
                    <c:attribute queryable="false"/>
                  </xs:appinfo></xs:annotation>
                </xs:element>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        schema = load_xsd(text)
        assert not schema.attribute_by_tag("hidden").queryable


class TestNamedTypes:
    def test_type_reference_resolved(self):
        text = wrap(
            f"""
            <xs:complexType name="boxType">
              <xs:sequence>
                <xs:element name="width" type="xs:double" minOccurs="0"/>
              </xs:sequence>
            </xs:complexType>
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="box" type="boxType">{ATTR}</xs:element>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        schema = load_xsd(text)
        box = schema.attribute_by_tag("box")
        assert box.find_child("width").value_type is ValueType.FLOAT

    def test_unknown_type_reference(self):
        text = wrap(
            f"""
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="box" type="nope">{ATTR}</xs:element>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        with pytest.raises(SchemaError, match="unknown type"):
            load_xsd(text)

    def test_non_dynamic_recursion_rejected(self):
        text = wrap(
            f"""
            <xs:complexType name="loopType">
              <xs:sequence>
                <xs:element name="again" type="loopType" minOccurs="0"/>
              </xs:sequence>
            </xs:complexType>
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="loop" type="loopType">{ATTR}</xs:element>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        with pytest.raises(SchemaError, match="recursive type"):
            load_xsd(text)


class TestDynamicMarker:
    def test_dynamic_defaults_to_lead_convention(self):
        text = wrap(
            """
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="section" maxOccurs="unbounded" minOccurs="0">
                  <xs:annotation><xs:appinfo><c:dynamic/></xs:appinfo></xs:annotation>
                </xs:element>
                <xs:element name="id" type="xs:string">
                  <xs:annotation><xs:appinfo><c:attribute/></xs:appinfo></xs:annotation>
                </xs:element>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        schema = load_xsd(text)
        section = schema.attribute_by_tag("section")
        assert section.dynamic is not None
        assert section.dynamic.entity_tag == "enttyp"

    def test_dynamic_custom_tags(self):
        text = wrap(
            """
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="params" minOccurs="0">
                  <xs:annotation><xs:appinfo>
                    <c:dynamic entity="head" name="n" source="s"
                               item="p" label="k" defs="d" value="v"/>
                  </xs:appinfo></xs:annotation>
                </xs:element>
                <xs:element name="id" type="xs:string">
                  <xs:annotation><xs:appinfo><c:attribute/></xs:appinfo></xs:annotation>
                </xs:element>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        spec = load_xsd(text).attribute_by_tag("params").dynamic
        assert (spec.entity_tag, spec.name_tag, spec.item_tag) == ("head", "n", "p")


class TestErrors:
    def test_non_schema_root(self):
        with pytest.raises(SchemaError, match="xs:schema"):
            load_xsd("<other/>")

    def test_unannotated_leaf_rejected(self):
        text = wrap(
            """
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="stray" type="xs:string"/>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        with pytest.raises(SchemaError, match="outside any metadata attribute"):
            load_xsd(text)

    def test_annotated_root_rejected(self):
        text = wrap(
            f"""
            <xs:element name="root">
              {ATTR}
              <xs:complexType><xs:sequence>
                <xs:element name="x" type="xs:string"/>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        with pytest.raises(SchemaError):
            load_xsd(text)

    def test_attribute_inside_attribute_rejected(self):
        text = wrap(
            f"""
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="outer">
                  {ATTR}
                  <xs:complexType><xs:sequence>
                    <xs:element name="innerattr" type="xs:string">{ATTR}</xs:element>
                  </xs:sequence></xs:complexType>
                </xs:element>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        with pytest.raises(SchemaError, match="inside another attribute"):
            load_xsd(text)

    def test_two_top_level_elements_rejected(self):
        text = wrap("<xs:element name='a'/><xs:element name='b'/>")
        with pytest.raises(SchemaError, match="exactly one"):
            load_xsd(text)

    def test_unknown_marker_rejected(self):
        text = wrap(
            """
            <xs:element name="root">
              <xs:complexType><xs:sequence>
                <xs:element name="x" type="xs:string">
                  <xs:annotation><xs:appinfo><c:bogus/></xs:appinfo></xs:annotation>
                </xs:element>
              </xs:sequence></xs:complexType>
            </xs:element>
            """
        )
        with pytest.raises(SchemaError, match="unknown catalog annotation"):
            load_xsd(text)


class TestLeadXsdEquivalence:
    """The annotated-XSD form of Figure 2 loads to a schema identical to
    the hand-built one."""

    @staticmethod
    def _flatten(schema):
        return [
            (
                n.path(), n.kind.value, n.order, n.last_child_order,
                n.repeatable, n.required, n.queryable, n.value_type.value,
                None if n.dynamic is None else (
                    n.dynamic.entity_tag, n.dynamic.name_tag,
                    n.dynamic.source_tag, n.dynamic.item_tag,
                    n.dynamic.label_tag, n.dynamic.defs_tag,
                    n.dynamic.value_tag,
                ),
            )
            for n in schema.iter_nodes()
        ]

    def test_node_for_node_equivalent(self):
        assert self._flatten(lead_schema_from_xsd()) == self._flatten(lead_schema())

    def test_catalog_built_from_xsd_works(self):
        from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery
        from repro.grid import FIG3_DOCUMENT, define_fig3_attributes

        catalog = HybridCatalog(lead_schema_from_xsd())
        define_fig3_attributes(catalog)
        receipt = catalog.ingest(FIG3_DOCUMENT)
        assert receipt.warnings == []
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        )
        assert catalog.query(query) == [receipt.object_id]
