"""Shared helpers for the crash-safety suite: catalog builders on both
backends, reference queries, and a state snapshot for oracle checks."""

from __future__ import annotations

import pytest

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.faults import RetryPolicy
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.obs import MetricsRegistry

BACKENDS = ("memory", "sqlite")

#: A second theme instance, appendable to object 1 (same shape the
#: incremental tests use).
NEW_THEME = (
    "<theme><themekt>CF</themekt><themekey>late_added_key</themekey></theme>"
)


def build_catalog(backend: str, path: str = ":memory:",
                  registry: MetricsRegistry | None = None) -> HybridCatalog:
    """A catalog with the Fig-3 definitions and document (object 1)."""
    store = SqliteHybridStore(path) if backend == "sqlite" else None
    catalog = HybridCatalog(
        lead_schema(), store=store,
        metrics=registry if registry is not None else MetricsRegistry(),
    )
    define_fig3_attributes(catalog)
    catalog.ingest(FIG3_DOCUMENT, name="fig3")
    return catalog


def theme_query() -> ObjectQuery:
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element(
            "themekey", "", "air_pressure_at_cloud_top"
        )
    )


def grid_query() -> ObjectQuery:
    return ObjectQuery().add_attribute(
        AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000, Op.EQ)
    )


def snapshot(catalog: HybridCatalog, ids=(1,)):
    """Observable state an aborted operation must leave unchanged:
    both reference query results plus the rebuilt responses."""
    present = [i for i in ids if catalog.store.has_object(i)]
    return (
        catalog.query(theme_query()),
        catalog.query(grid_query()),
        catalog.fetch(present),
        catalog.store.object_count(),
    )


def no_wait_retry(max_attempts: int = 3) -> RetryPolicy:
    """The default retry semantics without real sleeping."""
    return RetryPolicy(max_attempts=max_attempts, base_delay=0.0,
                       sleep=lambda _delay: None)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param
