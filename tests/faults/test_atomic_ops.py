"""Every catalog write path is atomic on both backends: a fault injected
mid-operation raises cleanly, the catalog stays fsck-clean, observable
state (queries + responses) matches the pre-operation oracle, and the
retried operation succeeds."""

import pytest

from repro.core.integrity import check_catalog
from repro.errors import CatalogError
from repro.faults import FaultError, FaultPlan, RetryPolicy, TransientFault
from repro.grid import FIG3_DOCUMENT

from .conftest import NEW_THEME, build_catalog, no_wait_retry, snapshot, theme_query


def counter_value(registry, name, site):
    family = registry.get(name)
    if family is None:
        return 0.0
    for labels, metric in family.series():
        if labels.get("site") == site:
            return metric.value
    return 0.0


def assert_clean(catalog):
    assert check_catalog(catalog, deep=True) == []


class TestIngestAtomicity:
    def test_fault_rolls_back_everything(self, backend):
        catalog = build_catalog(backend)
        before = snapshot(catalog)
        catalog.store.install_faults(FaultPlan(site="insert:elements"))
        with pytest.raises(FaultError):
            catalog.ingest(FIG3_DOCUMENT, name="doomed")
        # No partial rows from any of the five tables survive.
        assert_clean(catalog)
        assert snapshot(catalog) == before
        assert len(catalog) == 1
        with pytest.raises(CatalogError):
            catalog.object_name(2)

    def test_retry_after_hard_fault_succeeds(self, backend):
        catalog = build_catalog(backend)
        catalog.store.install_faults(FaultPlan(site="insert:objects"))
        with pytest.raises(FaultError):
            catalog.ingest(FIG3_DOCUMENT, name="doomed")
        catalog.store.clear_faults()
        receipt = catalog.ingest(FIG3_DOCUMENT, name="second")
        assert catalog.object_name(receipt.object_id) == "second"
        assert len(catalog) == 2
        assert_clean(catalog)
        assert sorted(catalog.query(theme_query())) == [1, receipt.object_id]

    def test_rollback_metric_attributed_to_catalog_op(self, backend):
        registry_catalog = build_catalog(backend)
        registry = registry_catalog.metrics
        registry_catalog.store.install_faults(FaultPlan(site="insert:clobs"))
        with pytest.raises(FaultError):
            registry_catalog.ingest(FIG3_DOCUMENT)
        # The outermost transaction is the logical catalog operation, so
        # the rollback lands on catalog.ingest, not a store-level site.
        assert counter_value(registry, "txn_rollbacks_total", "catalog.ingest") == 1
        assert counter_value(registry, "txn_rollbacks_total", "store_object") == 0
        assert counter_value(registry, "fault_injected_total", "insert:clobs") == 1

    def test_commit_metric_per_logical_operation(self, backend):
        catalog = build_catalog(backend)
        base = counter_value(catalog.metrics, "txn_commits_total", "catalog.ingest")
        catalog.ingest(FIG3_DOCUMENT)
        assert (
            counter_value(catalog.metrics, "txn_commits_total", "catalog.ingest")
            == base + 1
        )


class TestTransientRetry:
    def test_transient_fault_retried_transparently(self, backend):
        catalog = build_catalog(backend)
        catalog.store.set_retry_policy(no_wait_retry())
        catalog.store.install_faults(
            FaultPlan(site="insert:objects", exc=TransientFault, heal=True)
        )
        receipt = catalog.ingest(FIG3_DOCUMENT, name="retried")
        # The first attempt rolled back; the automatic retry committed.
        assert counter_value(catalog.metrics, "txn_retries_total", "catalog.ingest") == 1
        assert counter_value(catalog.metrics, "txn_rollbacks_total", "catalog.ingest") == 1
        assert catalog.store.has_object(receipt.object_id)
        assert_clean(catalog)

    def test_retry_exhaustion_raises_and_stays_clean(self, backend):
        catalog = build_catalog(backend)
        before = snapshot(catalog)
        catalog.store.set_retry_policy(no_wait_retry(max_attempts=3))
        catalog.store.install_faults(
            FaultPlan(site="insert:objects", exc=TransientFault)
        )
        with pytest.raises(TransientFault):
            catalog.ingest(FIG3_DOCUMENT)
        assert counter_value(catalog.metrics, "txn_retries_total", "catalog.ingest") == 2
        assert snapshot(catalog) == before
        assert_clean(catalog)

    def test_hard_faults_are_not_retried(self, backend):
        catalog = build_catalog(backend)
        slept = []
        catalog.store.set_retry_policy(RetryPolicy(sleep=slept.append))
        catalog.store.install_faults(FaultPlan(site="insert:objects"))
        with pytest.raises(FaultError):
            catalog.ingest(FIG3_DOCUMENT)
        assert slept == []
        assert counter_value(catalog.metrics, "txn_retries_total", "catalog.ingest") == 0


class TestDeleteAtomicity:
    def test_fault_mid_delete_keeps_object_whole(self, backend):
        catalog = build_catalog(backend)
        before = snapshot(catalog)
        catalog.store.install_faults(FaultPlan(site="delete:elements"))
        with pytest.raises(FaultError):
            catalog.delete(1)
        # Already-deleted clob/attribute rows were rolled back: the
        # object still answers queries and rebuilds its full response.
        assert catalog.store.has_object(1)
        assert snapshot(catalog) == before
        assert_clean(catalog)
        catalog.store.clear_faults()
        catalog.delete(1)
        assert len(catalog) == 0
        assert catalog.query(theme_query()) == []
        assert_clean(catalog)


class TestAddAttributeAtomicity:
    def test_fault_mid_append_rolls_back_fragment(self, backend):
        catalog = build_catalog(backend)
        before = snapshot(catalog)
        catalog.store.install_faults(FaultPlan(site="insert:attributes"))
        with pytest.raises(FaultError):
            catalog.add_attribute(1, NEW_THEME)
        assert snapshot(catalog) == before
        assert_clean(catalog)
        catalog.store.clear_faults()
        receipt = catalog.add_attribute(1, NEW_THEME)
        assert receipt.clob_count == 1
        assert_clean(catalog)
        # The retried fragment took the next sequence — not one burned
        # by the rolled-back attempt.
        assert "late_added_key" in catalog.fetch([1])[1]


class TestRemoveAttributeAtomicity:
    def test_fault_mid_remove_keeps_instance_whole(self, backend):
        catalog = build_catalog(backend)
        before = snapshot(catalog)
        catalog.store.install_faults(FaultPlan(site="delete:clobs"))
        with pytest.raises(FaultError):
            catalog.remove_attribute(1, "theme")
        assert snapshot(catalog) == before
        assert_clean(catalog)
        catalog.store.clear_faults()
        catalog.remove_attribute(1, "theme")
        assert_clean(catalog)


class TestSyncDefinitionsAtomicity:
    def test_fault_mid_sync_rolls_back(self, backend):
        catalog = build_catalog(backend)
        catalog.store.install_faults(FaultPlan(site="insert:attr_defs"))
        with pytest.raises(FaultError):
            catalog.define_attribute("new-attr", "SRC")
        assert_clean(catalog)
        # The registry keeps the definition; clearing the fault and
        # re-syncing converges the store to it.
        catalog.store.clear_faults()
        catalog.store.sync_definitions(catalog.registry)
        assert_clean(catalog)
        attr = catalog.registry.lookup_attribute("new-attr", "SRC")
        assert attr is not None


class TestFaultScoping:
    def test_reads_outside_transactions_are_not_faulted(self, backend):
        catalog = build_catalog(backend)
        plan = catalog.store.install_faults(FaultPlan(fail_at=1))
        # Pure read paths run outside write transactions: armed plan or
        # not, they neither trip nor count.
        assert catalog.query(theme_query()) == [1]
        assert catalog.fetch([1])
        assert plan.statements_seen == 0
        assert plan.triggered == []
