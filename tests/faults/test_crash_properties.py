"""Crash-point sweep: fail *every* statement of every write path on
both backends and prove the invariants hold at each index.

The oracle protocol per crash point:

1. build a fresh catalog and snapshot its observable state;
2. arm a one-shot (``heal=True``) fault at statement ``i``;
3. the operation must raise;
4. ``check_catalog(deep=True)`` must report zero violations;
5. queries and rebuilt responses must equal the pre-operation snapshot;
6. the retried operation (plan now disarmed) must succeed and leave the
   catalog fsck-clean again.

A counting plan (no trigger) discovers each workload's statement count,
so the sweep is exhaustive by construction, not by guesswork.  The
hypothesis test then samples random (backend, operation, index,
fault-kind) combinations including the transient-fault/auto-retry path.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.integrity import check_catalog
from repro.faults import FaultError, FaultPlan, TransientFault
from repro.grid import FIG3_DOCUMENT

from .conftest import BACKENDS, NEW_THEME, build_catalog, no_wait_retry, snapshot

OPS = {
    "ingest": lambda c: c.ingest(FIG3_DOCUMENT, name="second"),
    "add_attribute": lambda c: c.add_attribute(1, NEW_THEME),
    "delete": lambda c: c.delete(1),
    "remove_attribute": lambda c: c.remove_attribute(1, "theme"),
}

#: ``(backend, op) -> statement count`` discovered by dry runs, cached
#: because building a catalog per probe is the expensive part.
_totals = {}


def statement_total(backend, op):
    key = (backend, op)
    if key not in _totals:
        catalog = build_catalog(backend)
        plan = catalog.store.install_faults(FaultPlan())
        OPS[op](catalog)
        assert plan.statements_seen > 0, f"{op} issued no faultable statements"
        _totals[key] = plan.statements_seen
    return _totals[key]


def assert_crash_point_invariants(backend, op, index, transient=False):
    """Steps 1-6 of the oracle protocol at one crash point."""
    catalog = build_catalog(backend)
    catalog.store.set_retry_policy(no_wait_retry())
    before = snapshot(catalog)
    exc_type = TransientFault if transient else FaultError
    plan = catalog.store.install_faults(
        FaultPlan(fail_at=index, exc=exc_type, heal=True)
    )
    if transient:
        # One transient failure heals on the automatic retry: the
        # operation succeeds as if nothing happened.
        OPS[op](catalog)
        assert len(plan.triggered) == 1
    else:
        with pytest.raises(exc_type):
            OPS[op](catalog)
        assert plan.triggered == [(index, plan.triggered[0][1])]
        assert check_catalog(catalog, deep=True) == []
        assert snapshot(catalog) == before
        # The plan healed itself on trigger, so the retry goes through.
        OPS[op](catalog)
    assert check_catalog(catalog, deep=True) == []


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("op", sorted(OPS))
def test_every_statement_index_is_a_safe_crash_point(backend, op):
    total = statement_total(backend, op)
    for index in range(1, total + 1):
        assert_crash_point_invariants(backend, op, index)


@pytest.mark.parametrize("backend", BACKENDS)
def test_statement_counts_are_deterministic(backend):
    # The sweep's exhaustiveness rests on repeatable counting.
    first = dict(_totals)
    _totals.clear()
    for op in OPS:
        statement_total(backend, op)
    for (b, op), count in first.items():
        if b == backend:
            assert _totals[(b, op)] == count


@given(data=st.data())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_crash_points_hold_invariants(data):
    backend = data.draw(st.sampled_from(BACKENDS), label="backend")
    op = data.draw(st.sampled_from(sorted(OPS)), label="op")
    total = statement_total(backend, op)
    index = data.draw(st.integers(min_value=1, max_value=total), label="index")
    transient = data.draw(st.booleans(), label="transient")
    assert_crash_point_invariants(backend, op, index, transient=transient)
