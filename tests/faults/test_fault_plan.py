"""Unit tests for the fault-injection plan and the retry policy."""

import sqlite3

import pytest

from repro.faults import (
    DEFAULT_RETRY,
    NO_RETRY,
    FaultError,
    FaultPlan,
    RetryPolicy,
    TransientFault,
    is_transient,
)
from repro.obs import MetricsRegistry


class TestFaultPlan:
    def test_counting_mode_never_raises(self):
        plan = FaultPlan()
        for _ in range(10):
            plan.before("insert:objects")
        assert plan.statements_seen == 10
        assert not plan.armed
        assert plan.triggered == []

    def test_fail_at_nth_statement(self):
        plan = FaultPlan(fail_at=3)
        plan.before("insert:objects")
        plan.before("insert:clobs")
        with pytest.raises(FaultError, match="statement 3"):
            plan.before("insert:attributes")
        assert plan.triggered == [(3, "insert:attributes")]

    def test_fail_at_is_one_based(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_at=0)

    def test_site_targeting(self):
        plan = FaultPlan(site="insert:elements")
        plan.before("insert:objects")
        plan.before("insert:clobs")
        with pytest.raises(FaultError):
            plan.before("insert:elements")

    def test_site_occurrence(self):
        plan = FaultPlan(site="insert:clobs", site_occurrence=2)
        plan.before("insert:clobs")  # first occurrence: survives
        plan.before("insert:objects")
        with pytest.raises(FaultError):
            plan.before("insert:clobs")
        assert plan.statements_seen == 3

    def test_without_heal_keeps_failing(self):
        plan = FaultPlan(fail_at=1)
        with pytest.raises(FaultError):
            plan.before("insert:objects")
        # fail_at matches a specific global index, so later statements
        # pass, but the plan stays armed.
        assert plan.armed

    def test_heal_disarms_after_first_trigger(self):
        plan = FaultPlan(site="insert:clobs", heal=True)
        with pytest.raises(FaultError):
            plan.before("insert:clobs")
        assert not plan.armed
        plan.before("insert:clobs")  # retry passes
        assert plan.statements_seen == 2
        assert len(plan.triggered) == 1

    def test_custom_exception_instance(self):
        plan = FaultPlan(fail_at=1, exc=sqlite3.OperationalError("database is locked"))
        with pytest.raises(sqlite3.OperationalError):
            plan.before("insert:objects")

    def test_custom_exception_factory(self):
        plan = FaultPlan(fail_at=1, exc=TransientFault)
        with pytest.raises(TransientFault):
            plan.before("insert:objects")

    def test_trigger_increments_metric(self):
        registry = MetricsRegistry()
        plan = FaultPlan(fail_at=1)
        with pytest.raises(FaultError):
            plan.before("insert:objects", registry)
        family = registry.get("fault_injected_total")
        series = {labels["site"]: m.value for labels, m in family.series()}
        assert series == {"insert:objects": 1}


class TestRetryPolicy:
    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05)
        assert [policy.backoff(n) for n in (1, 2, 3, 4, 5)] == pytest.approx(
            [0.01, 0.02, 0.04, 0.05, 0.05]
        )

    def test_pause_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(base_delay=0.5, max_delay=2.0, sleep=slept.append)
        policy.pause(1)
        policy.pause(2)
        assert slept == pytest.approx([0.5, 1.0])

    def test_transient_detection(self):
        assert is_transient(sqlite3.OperationalError("database is locked"))
        assert is_transient(TransientFault())
        assert not is_transient(sqlite3.OperationalError("no such table: x"))
        assert not is_transient(FaultError("hard fault"))
        assert not is_transient(ValueError("unrelated"))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)

    def test_defaults(self):
        assert DEFAULT_RETRY.max_attempts == 3
        assert NO_RETRY.max_attempts == 1
