"""Crash safety across process boundaries: a rolled-back write leaves
nothing behind in the on-disk catalog file, so a reopen (S24
rehydration) sees exactly the pre-fault state."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import HybridCatalog
from repro.core.integrity import check_catalog
from repro.faults import FaultError, FaultPlan
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema

from .conftest import snapshot, theme_query


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "catalog.db")


def open_catalog(db_path):
    return HybridCatalog(lead_schema(), store=SqliteHybridStore(db_path))


class TestReopenAfterRollback:
    def test_reopened_file_matches_pre_fault_state(self, db_path):
        catalog = open_catalog(db_path)
        define_fig3_attributes(catalog)
        catalog.ingest(FIG3_DOCUMENT, name="fig3", owner="ann")
        before = snapshot(catalog)
        catalog.store.install_faults(FaultPlan(site="insert:elements"))
        with pytest.raises(FaultError):
            catalog.ingest(FIG3_DOCUMENT, name="doomed")
        catalog.store.close()

        reopened = open_catalog(db_path)
        assert len(reopened) == 1
        assert reopened.object_name(1) == "fig3"
        with pytest.raises(Exception):
            reopened.object_name(2)
        # Registry rehydrated from the definition tables the failed
        # ingest could not have half-written.
        assert reopened.registry.lookup_attribute("grid", "ARPS") is not None
        assert snapshot(reopened) == before
        assert check_catalog(reopened, deep=True) == []

    def test_reopened_catalog_reuses_the_rolled_back_id(self, db_path):
        catalog = open_catalog(db_path)
        define_fig3_attributes(catalog)
        catalog.ingest(FIG3_DOCUMENT, name="fig3")
        catalog.store.install_faults(FaultPlan(site="insert:objects"))
        with pytest.raises(FaultError):
            catalog.ingest(FIG3_DOCUMENT, name="doomed")
        catalog.store.close()

        # The failed ingest burned id 2 in the old process, but wrote
        # nothing — the reopened catalog allocates from stored state.
        reopened = open_catalog(db_path)
        receipt = reopened.ingest(FIG3_DOCUMENT, name="second")
        assert receipt.object_id == 2
        assert sorted(reopened.query(theme_query())) == [1, 2]
        assert check_catalog(reopened, deep=True) == []

    def test_on_disk_catalog_uses_wal(self, db_path):
        catalog = open_catalog(db_path)
        mode = catalog.store.connection.execute(
            "PRAGMA journal_mode"
        ).fetchone()[0]
        assert mode == "wal"

    def test_memory_catalog_keeps_fast_pragmas(self):
        store = SqliteHybridStore(":memory:")
        mode = store.connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "memory"
