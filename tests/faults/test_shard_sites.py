"""Crash-point sweeps over the sharded-catalog federation sites.

The three ``shard:*`` sites guard the federation layer the same way
the ``insert:*``/``delete:*`` sites guard the stores:

* ``shard:write``  — before a write routes to its owning shard.
* ``shard:sync``   — before each leg of a definition-sync fan-out
  (the mid-fan-out crash leaves trailing shards unsynced; the sweep
  proves per-shard fsck stays clean and ``resync_definitions`` heals).
* ``shard:query``  — before each leg of a scatter-gather query (one
  shard "down" mid-fan-out must fail the whole query, never hand back
  a partial federation).

Every assertion about post-crash state runs through the per-shard
integrity checker, so an aborted federation step can never leave a
shard half-written.
"""

import pytest

from repro.faults import FaultError, FaultPlan
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.obs import MetricsRegistry
from repro.sharding import ShardedCatalog, check_sharded_catalog

from .conftest import grid_query, theme_query

SHARDS = 3


def build_sharded(tmp_path=None, shards=SHARDS, ingest=4):
    """A sharded catalog with the Fig-3 vocabulary and ``ingest``
    copies of the Fig-3 document spread across ``shards`` shards."""
    path = str(tmp_path / "cat.db") if tmp_path is not None else None
    catalog = ShardedCatalog(
        lead_schema(), shards=shards, path=path, metrics=MetricsRegistry()
    )
    define_fig3_attributes(catalog)
    for index in range(ingest):
        catalog.ingest(FIG3_DOCUMENT, name=f"fig3-{index}", owner=f"u{index}")
    return catalog


def snapshot(catalog):
    """Observable federation state an aborted operation must leave
    unchanged."""
    ids = catalog.query(theme_query())
    return (
        ids,
        catalog.query(grid_query()),
        catalog.fetch(ids),
        len(catalog),
        dict(catalog._locations),
    )


# ---------------------------------------------------------------------------
# shard:write
# ---------------------------------------------------------------------------

class TestShardWriteSite:
    def test_fires_on_ingest_and_burns_no_id(self):
        catalog = build_sharded()
        before = snapshot(catalog)
        plan = catalog.install_faults(FaultPlan(site="shard:write"))
        with pytest.raises(FaultError):
            catalog.ingest(FIG3_DOCUMENT, name="doomed")
        assert plan.triggered
        catalog.clear_faults()
        assert snapshot(catalog) == before
        assert check_sharded_catalog(catalog, deep=True) == []
        # The consult precedes id allocation: the next ingest gets the
        # id the failed one would have, so routing never drifts.
        receipt = catalog.ingest(FIG3_DOCUMENT, name="next")
        assert receipt.object_id == len(before[4]) + 1

    @pytest.mark.parametrize("op", ["delete", "add_attribute", "remove_attribute"])
    def test_fires_on_every_write_verb(self, op):
        catalog = build_sharded()
        before = snapshot(catalog)
        plan = catalog.install_faults(FaultPlan(site="shard:write"))
        with pytest.raises(FaultError):
            if op == "delete":
                catalog.delete(1)
            elif op == "add_attribute":
                catalog.add_attribute(1, "<theme><themekey>x</themekey></theme>")
            else:
                catalog.remove_attribute(1, "theme")
        assert plan.triggered
        catalog.clear_faults()
        assert snapshot(catalog) == before
        assert check_sharded_catalog(catalog, deep=True) == []


# ---------------------------------------------------------------------------
# shard:sync (mid-fan-out definition failure + heal)
# ---------------------------------------------------------------------------

class TestShardSyncSite:
    @pytest.mark.parametrize("fail_leg", range(1, SHARDS + 1))
    def test_fanout_sweep_leaves_shards_consistent(self, fail_leg):
        """Fail the definition fan-out at each leg in turn: shards
        before the failure carry the new rows, shards after do not,
        every shard passes fsck, and one resync converges them all."""
        catalog = build_sharded()
        plan = catalog.install_faults(
            FaultPlan(site="shard:sync", site_occurrence=fail_leg)
        )
        with pytest.raises(FaultError):
            catalog.define_attribute("swept", "SWEEP")
        assert plan.triggered
        catalog.clear_faults()
        # The shared registry holds the definition; legs < fail_leg
        # synced it, the rest lag behind.
        assert catalog.registry.lookup_attribute("swept", "SWEEP") is not None
        synced = [
            row_counts(cat)["attr_defs"] for cat in catalog.shards
        ]
        assert synced[: fail_leg - 1] == [synced[0]] * (fail_leg - 1)
        assert check_sharded_catalog(catalog, deep=True) == []
        # Heal: sync is an upsert of missing rows, so one resync
        # converges every shard on the registry.
        catalog.resync_definitions()
        counts = {row_counts(cat)["attr_defs"] for cat in catalog.shards}
        assert len(counts) == 1
        assert check_sharded_catalog(catalog, deep=True) == []

    def test_resynced_definition_is_queryable_everywhere(self):
        catalog = build_sharded()
        catalog.install_faults(FaultPlan(site="shard:sync", site_occurrence=2))
        with pytest.raises(FaultError):
            catalog.define_attribute("lineage", "SWEEP")
        catalog.clear_faults()
        catalog.resync_definitions()
        from repro.core import AttributeCriteria, ObjectQuery

        query = ObjectQuery().add_attribute(AttributeCriteria("lineage", "SWEEP"))
        assert catalog.query(query) == []  # resolves on every shard


def row_counts(catalog):
    return {name: rows for name, rows, _size in catalog.storage_report()}


# ---------------------------------------------------------------------------
# shard:query (one shard down during scatter-gather)
# ---------------------------------------------------------------------------

class TestShardQuerySite:
    @pytest.mark.parametrize("fail_leg", range(1, SHARDS + 1))
    def test_leg_failure_never_returns_partial_results(self, fail_leg):
        catalog = build_sharded()
        expected = catalog.query(theme_query())
        assert expected  # the sweep must guard a non-empty federation
        plan = catalog.install_faults(
            FaultPlan(site="shard:query", site_occurrence=fail_leg)
        )
        with pytest.raises(FaultError):
            catalog.query(theme_query())
        assert plan.triggered
        # Recovery: clearing the fault restores the full federation.
        catalog.clear_faults()
        assert catalog.query(theme_query()) == expected
        assert check_sharded_catalog(catalog, deep=True) == []

    def test_explain_legs_consult_the_same_site(self):
        catalog = build_sharded()
        plan = catalog.install_faults(FaultPlan(site="shard:query"))
        with pytest.raises(FaultError):
            catalog.explain(theme_query())
        assert plan.triggered

    def test_write_sweeps_do_not_drift_through_federation(self):
        """A plan targeting a *store* write site counts the same
        statements through the facade as against a bare catalog: the
        shard:* consults never consume its counter (the pool:acquire
        precedent, extended to the routing layer)."""
        catalog = build_sharded()
        plan = FaultPlan(site="insert:objects")
        plan.armed = False  # observe counts without firing
        catalog.install_faults(plan)
        seen_before = plan.statements_seen
        catalog.query(theme_query())
        catalog.explain(theme_query())
        assert plan.statements_seen == seen_before


# ---------------------------------------------------------------------------
# Per-shard statement-site sweep through the facade
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fail_at", range(1, 6))
def test_statement_sweep_through_owning_shard(fail_at, tmp_path):
    """Deterministic fail_at sweep over the owning shard's write
    statements, driven through the federation: every prefix crash
    leaves all shards fsck-clean and the federation state unchanged."""
    catalog = build_sharded(tmp_path)
    before = snapshot(catalog)
    plan = catalog.install_faults(FaultPlan(fail_at=fail_at))
    try:
        catalog.ingest(FIG3_DOCUMENT, name="crash")
    except FaultError:
        pass
    else:
        pytest.skip(f"ingest issues fewer than {fail_at} statements")
    finally:
        catalog.clear_faults()
    assert plan.triggered
    assert snapshot(catalog) == before
    assert check_sharded_catalog(catalog, deep=True) == []
