"""Every registered statement fault site actually fires.

FLT01 statically pins site *names* (every literal used with a
``FaultPlan`` is registered, every registered statement site appears in
a test under ``tests/faults/``); this module closes the loop at
runtime: for each site in :data:`repro.faults.sites.STATEMENT_SITES`,
arm a :class:`FaultPlan` targeting it, drive the workload that should
cross it on *both* backends, and require the injected
:class:`FaultError` to surface.  A site that never fires here is dead —
renamed on the write path, or no longer reachable — and the sweep
fails loudly instead of silently injecting nothing.
"""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import HybridCatalog, ValueType
from repro.errors import ReproError
from repro.faults import FaultError, FaultPlan
from repro.faults.sites import (
    ALL_SITES,
    OBJECT_ROW_TABLES,
    STATEMENT_SITES,
    TRANSACTION_SITES,
    check_site,
)
from repro.grid import FIG3_DOCUMENT, lead_schema
from repro.obs import MetricsRegistry

from .conftest import build_catalog

#: Statement sites crossed while ``install_schema`` loads the ordering
#: tables — they fire during catalog construction, before any workload.
_SCHEMA_SITES = frozenset({"insert:schema_order", "insert:node_ancestors"})

#: Read-path sites that exist only on the durable sqlite backend (the
#: reader pool); exercised by the dedicated tests below rather than the
#: two-backend write sweep.
_POOL_SITES = frozenset({"pool:acquire"})

#: Federation sites consulted by the sharded-catalog facade; exercised
#: by the dedicated sweeps in ``test_shard_sites.py`` (they need a
#: :class:`~repro.sharding.ShardedCatalog`, not a bare store).
_SHARD_SITES = frozenset({"shard:write", "shard:sync", "shard:query"})


def _trigger_define(catalog: HybridCatalog) -> None:
    attr = catalog.define_attribute("sweepattr", "SWEEP", host="detailed")
    catalog.define_element(attr, "sweepval", "SWEEP", ValueType.STRING)


def _trigger_ingest(catalog: HybridCatalog) -> None:
    catalog.ingest(FIG3_DOCUMENT, name="sweep")


def _trigger_delete(catalog: HybridCatalog) -> None:
    catalog.delete(1)


#: site -> workload that must cross it (the build_catalog fixture has
#: the Fig-3 definitions and object 1 already in place).
SITE_TRIGGERS = {
    "insert:attr_defs": _trigger_define,
    "insert:elem_defs": _trigger_define,
    "insert:objects": _trigger_ingest,
    "insert:clobs": _trigger_ingest,
    "insert:attributes": _trigger_ingest,
    "insert:elements": _trigger_ingest,
    "insert:attr_ancestors": _trigger_ingest,
    "delete:objects": _trigger_delete,
    "delete:clobs": _trigger_delete,
    "delete:attributes": _trigger_delete,
    "delete:elements": _trigger_delete,
    "delete:attr_ancestors": _trigger_delete,
}


def test_every_statement_site_has_a_trigger():
    """The sweep below covers the whole registry — adding a site to
    ``STATEMENT_SITES`` without extending this module is itself a
    failure (the static half of the same check is FLT01)."""
    assert (
        set(SITE_TRIGGERS) | _SCHEMA_SITES | _POOL_SITES | _SHARD_SITES
        == set(STATEMENT_SITES)
    )


@pytest.mark.parametrize("site", sorted(SITE_TRIGGERS))
def test_statement_site_fires(backend, site):
    catalog = build_catalog(backend)
    plan = FaultPlan(site=site)
    catalog.store.install_faults(plan)
    with pytest.raises(FaultError):
        SITE_TRIGGERS[site](catalog)
    assert plan.triggered, f"site {site!r} never injected on {backend}"


@pytest.mark.parametrize("site", sorted(_SCHEMA_SITES))
def test_schema_install_site_fires(backend, site):
    store = (
        SqliteHybridStore(":memory:") if backend == "sqlite" else None
    )
    plan = FaultPlan(site=site)
    if store is None:
        from repro.core.storage import MemoryHybridStore

        store = MemoryHybridStore()
    store.install_faults(plan)
    with pytest.raises(FaultError):
        HybridCatalog(lead_schema(), store=store, metrics=MetricsRegistry())
    assert plan.triggered, f"site {site!r} never injected on {backend}"


def test_schema_install_fault_rolls_back_ordering_rows(backend):
    """A crash mid-``install_schema`` must not leave a half-loaded
    global ordering behind (the TXN01 fix that wrapped the memory
    loader in a transaction)."""
    if backend == "sqlite":
        store = SqliteHybridStore(":memory:")
    else:
        from repro.core.storage import MemoryHybridStore

        store = MemoryHybridStore()
    store.install_faults(FaultPlan(site="insert:node_ancestors"))
    with pytest.raises(FaultError):
        HybridCatalog(lead_schema(), store=store, metrics=MetricsRegistry())
    report = {name: rows for name, rows, _size in store.storage_report()}
    assert report.get("schema_order", 0) == 0
    assert report.get("node_ancestors", 0) == 0


def test_pool_acquire_site_fires(tmp_path):
    """The reader-pool checkout path injects like any write site.  The
    pool exists only on the durable sqlite backend (``:memory:`` reads
    share the writer connection), so this site has its own trigger
    instead of riding the two-backend sweep above."""
    catalog = build_catalog("sqlite", path=str(tmp_path / "pool.db"))
    plan = FaultPlan(site="pool:acquire")
    catalog.store.install_faults(plan)
    with pytest.raises(FaultError):
        catalog.store.has_object(1)
    assert plan.triggered, "pool:acquire never injected"
    # The failed checkout must not leak a reservation: healing the plan
    # leaves a fully usable pool behind.
    catalog.store.clear_faults()
    assert catalog.store.has_object(1)
    assert catalog.store._pool.open_connections() <= catalog.store._pool.capacity


def test_pool_acquire_fault_does_not_consume_statement_counts(tmp_path):
    """A plan targeting a *write* site must count write statements only:
    reader-pool checkouts happening concurrently (or between writes)
    never consult it, so deterministic ``fail_at`` sweeps don't drift
    when the read path changes."""
    catalog = build_catalog("sqlite", path=str(tmp_path / "drift.db"))
    plan = FaultPlan(site="insert:objects")
    plan.armed = False  # observe counts without ever firing
    catalog.store.install_faults(plan)
    seen_before = plan.statements_seen
    for _ in range(5):
        catalog.store.has_object(1)
        catalog.store.object_count()
    assert plan.statements_seen == seen_before


class TestRegistry:
    def test_check_site_accepts_registered_names(self):
        for site in sorted(ALL_SITES):
            assert check_site(site) == site

    def test_check_site_rejects_unregistered_names(self):
        with pytest.raises(ValueError, match="not registered"):
            check_site("delete:unknown_table")

    def test_statement_and_transaction_sites_are_disjoint(self):
        assert not (STATEMENT_SITES & TRANSACTION_SITES)

    def test_object_row_tables_all_have_delete_sites(self):
        for table in OBJECT_ROW_TABLES:
            assert f"delete:{table}" in STATEMENT_SITES

    def test_fault_plan_rejects_nothing_silently(self):
        # Arming a plan for an unregistered site is the runtime bug
        # FLT01 exists to prevent; the registry helper catches it.
        with pytest.raises(ValueError):
            check_site("insert:no_such_table")


def test_remove_attribute_uses_registered_sites(backend):
    """The incremental-maintenance path injects at the same registered
    delete sites as full object deletion."""
    catalog = build_catalog(backend)
    plan = FaultPlan(site="delete:clobs")
    catalog.store.install_faults(plan)
    with pytest.raises((FaultError, ReproError)):
        catalog.remove_attribute(1, "theme")
    assert plan.triggered
