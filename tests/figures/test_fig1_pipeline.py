"""F1 — Figure 1: the hybrid pipeline end to end.

Schema-based XML metadata → XML shredding → (shredded attributes for
queries + shredded CLOBs by attribute) → query on attributes → object
ids → build response (CLOBs + schema structure ordering) → XML response.
"""

from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op, PlanTrace
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import canonical, parse


class TestFigure1Pipeline:
    def test_end_to_end(self):
        # (1) Schema-based XML metadata enters the catalog...
        catalog = HybridCatalog(lead_schema())
        define_fig3_attributes(catalog)
        receipt = catalog.ingest(FIG3_DOCUMENT, name="fig3")

        # (2) ...is shredded both into CLOBs by attribute and into
        # queryable attributes (dual storage, Fig 1 center).
        assert receipt.clob_count > 0
        assert receipt.attribute_count > 0
        assert receipt.element_count > 0

        # (3) A query on attributes produces object ids...
        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000, Op.EQ)
        )
        trace = PlanTrace()
        ids = catalog.query(query, trace=trace)
        assert ids == [receipt.object_id]

        # (4) ...and the response is built from CLOBs + the schema
        # structure ordering, yielding the original document.
        response = catalog.fetch(ids)[receipt.object_id]
        assert canonical(parse(response)) == canonical(parse(FIG3_DOCUMENT))

    def test_pipeline_stages_traced(self):
        catalog = HybridCatalog(lead_schema())
        define_fig3_attributes(catalog)
        catalog.ingest(FIG3_DOCUMENT)
        trace = PlanTrace()
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        catalog.query(query, trace=trace)
        assert trace.stage_names()[0] == "query-criteria"
        assert trace.stage_names()[-1] == "object-ids"

    def test_lossless_shredding_not_required(self):
        """Fig 1's point: the shredded rows need not reconstruct the
        document — CLOBs do.  Content failing dynamic validation is
        absent from the query tables yet present in the response."""
        catalog = HybridCatalog(lead_schema())  # no dynamic defs registered
        receipt = catalog.ingest(FIG3_DOCUMENT)
        assert receipt.warnings  # grid/ARPS not defined -> not shredded
        query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
        ids = catalog.query(query)
        response = catalog.fetch(ids)[receipt.object_id]
        # The un-shredded dynamic section still appears verbatim.
        assert "<attrlabl>grid-stretching</attrlabl>" in response
        assert canonical(parse(response)) == canonical(parse(FIG3_DOCUMENT))
