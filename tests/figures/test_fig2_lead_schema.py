"""F2 — Figure 2: the annotated LEAD schema and its global ordering.

The figure shows the partial LEAD schema with metadata attributes
bolded, metadata elements italicized, and the schema-level global
ordering as circled numbers 1..23.  These tests pin our encoding to the
figure: the same 23 ordered nodes, the same attribute/element
partition, pre-order numbering with last-child orders.

(The paper's narration gives theme's circled number as 10 where strict
pre-order over the figure's visible nodes yields 9; the figure text is
ambiguous in the available rendering — see EXPERIMENTS.md F2.)
"""

import pytest

from repro.core import NodeKind
from repro.grid import lead_schema

EXPECTED_ORDER = [
    (1, "LEADresource", 23),
    (2, "resourceID", 2),
    (3, "data", 23),
    (4, "idinfo", 14),
    (5, "status", 5),
    (6, "citation", 6),
    (7, "timeperd", 7),
    (8, "keywords", 12),
    (9, "theme", 9),
    (10, "place", 10),
    (11, "stratum", 11),
    (12, "temporal", 12),
    (13, "accconst", 13),
    (14, "useconst", 14),
    (15, "geospatial", 23),
    (16, "spdom", 18),
    (17, "bounding", 17),
    (18, "dsgpoly", 18),
    (19, "spattemp", 19),
    (20, "vertdom", 20),
    (21, "eainfo", 23),
    (22, "detailed", 22),
    (23, "overview", 23),
]

ATTRIBUTES = {
    "resourceID", "status", "citation", "timeperd", "theme", "place",
    "stratum", "temporal", "accconst", "useconst", "bounding", "dsgpoly",
    "spattemp", "vertdom", "detailed", "overview",
}

ELEMENTS = {
    "progress", "update", "origin", "pubdate", "title", "begdate", "enddate",
    "themekt", "themekey", "placekt", "placekey", "stratkt", "stratkey",
    "tempkt", "tempkey", "westbc", "eastbc", "northbc", "southbc",
    "dsgpolyx", "dsgpolyy", "sptbegin", "sptend", "vertmin", "vertmax",
    "eaover", "eadetcit",
}


@pytest.fixture(scope="module")
def schema():
    return lead_schema()


class TestFigure2Ordering:
    def test_twenty_three_ordered_nodes(self, schema):
        assert len(schema.ordered_nodes) == 23

    def test_global_ordering_table(self, schema):
        actual = [
            (n.order, n.tag, n.last_child_order) for n in schema.ordered_nodes
        ]
        assert actual == EXPECTED_ORDER

    def test_attribute_last_child_equals_own_order(self, schema):
        for node in schema.attributes():
            assert node.last_child_order == node.order, node.tag


class TestFigure2Partition:
    def test_bolded_nodes_are_attributes(self, schema):
        actual = {n.tag for n in schema.attributes()}
        assert actual == ATTRIBUTES

    def test_italicized_nodes_are_elements(self, schema):
        actual = {
            n.tag
            for n in schema.iter_nodes()
            if n.kind is NodeKind.ELEMENT
        }
        assert actual == ELEMENTS

    def test_resource_id_is_both_attribute_and_element(self, schema):
        rid = schema.attribute_by_tag("resourceID")
        assert rid.is_attribute and rid.is_element

    def test_keyword_attributes_repeatable(self, schema):
        for tag in ("theme", "place", "stratum", "temporal"):
            assert schema.attribute_by_tag(tag).repeatable, tag

    def test_detailed_is_the_dynamic_attribute(self, schema):
        detailed = schema.attribute_by_tag("detailed")
        assert detailed.dynamic is not None
        spec = detailed.dynamic
        assert (spec.entity_tag, spec.name_tag, spec.source_tag) == (
            "enttyp", "enttypl", "enttypds",
        )
        assert (spec.item_tag, spec.label_tag, spec.defs_tag, spec.value_tag) == (
            "attr", "attrlabl", "attrdefs", "attrv",
        )

    def test_single_attribute_per_root_to_leaf_path(self, schema):
        """The §6 invariant making the hybrid approach space-efficient."""
        for node in schema.iter_nodes():
            if not node.children:
                count = sum(
                    1
                    for n in [node] + node.ancestors()
                    if n.kind is NodeKind.ATTRIBUTE
                )
                assert count == 1, node.path()

    def test_describe_shows_figure_annotations(self, schema):
        text = schema.describe()
        assert "theme [ATTRIBUTE] #9 (repeatable)" in text
        assert "detailed [ATTRIBUTE] #22 (repeatable, dynamic)" in text
        assert "resourceID [ATTRIBUTE] #2 (leaf)" in text
