"""F3 — Figure 3: shredding the paper's example document.

§3 narrates exactly what the two theme attributes and the detailed
dynamic attribute shred into; these tests assert that narration
row by row.
"""

import pytest

from repro.core import HybridCatalog
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import parse


@pytest.fixture(scope="module")
def shredded():
    catalog = HybridCatalog(lead_schema())
    define_fig3_attributes(catalog)
    result = catalog.shredder.shred(parse(FIG3_DOCUMENT))
    return catalog, result


class TestThemeShredding:
    """'the two theme elements ... would be stored as a CLOB along with
    their global node ordering and their sequence IDs based on
    same-sibling ordering (1 and 2)'."""

    def test_theme_clobs_with_sequence(self, shredded):
        catalog, result = shredded
        theme_order = catalog.schema.attribute_by_tag("theme").order
        theme_clobs = [c for c in result.clobs if c.schema_order == theme_order]
        assert [c.clob_seq for c in theme_clobs] == [1, 2]

    def test_theme_clob_content_verbatim(self, shredded):
        _catalog, result = shredded
        texts = [c.text for c in result.clobs if c.text.lstrip().startswith("<theme>")]
        assert "convective_precipitation_amount" in texts[0]
        assert "air_pressure_at_cloud_base" in texts[1]

    def test_theme_definition_determined_by_tag(self, shredded):
        catalog, result = shredded
        theme_def = catalog.registry.structural_attribute("theme")
        rows = [a for a in result.attributes if a.attr_id == theme_def.attr_id]
        assert [a.seq_id for a in rows] == [1, 2]

    def test_themekey_elements_shredded(self, shredded):
        catalog, result = shredded
        theme_def = catalog.registry.structural_attribute("theme")
        themekey = catalog.registry.lookup_element(theme_def, "themekey", "")
        values = [
            e.value_text for e in result.elements if e.elem_id == themekey.elem_id
        ]
        assert values == [
            "convective_precipitation_amount",
            "convective_precipitation_flux",
            "air_pressure_at_cloud_base",
            "air_pressure_at_cloud_top",
        ]

    def test_element_sequence_within_each_theme(self, shredded):
        catalog, result = shredded
        theme_def = catalog.registry.structural_attribute("theme")
        first = [
            (e.elem_seq, e.value_text)
            for e in result.elements
            if e.attr_id == theme_def.attr_id and e.seq_id == 1
        ]
        # themekt then two themekeys, in document order.
        assert first == [
            (1, "CF NetCDF"),
            (2, "convective_precipitation_amount"),
            (3, "convective_precipitation_flux"),
        ]


class TestDynamicShredding:
    """'the metadata attribute definition is determined based on ... the
    values contained in the enttypl and enttypds elements (which contain
    "grid" and "ARPS" respectively)' ... 'the first attr element is a
    sub-attribute and the last two are metadata elements'."""

    def test_grid_resolved_by_name_and_source(self, shredded):
        catalog, result = shredded
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        assert any(a.attr_id == grid.attr_id for a in result.attributes)

    def test_detailed_clob_stored_once(self, shredded):
        catalog, result = shredded
        detailed_order = catalog.schema.attribute_by_tag("detailed").order
        clobs = [c for c in result.clobs if c.schema_order == detailed_order]
        assert len(clobs) == 1
        assert clobs[0].clob_seq == 1
        assert "<enttypl>grid</enttypl>" in clobs[0].text

    def test_grid_stretching_is_sub_attribute(self, shredded):
        catalog, result = shredded
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        stretching = catalog.registry.lookup_attribute(
            "grid-stretching", "ARPS", parent=grid
        )
        assert any(a.attr_id == stretching.attr_id for a in result.attributes)

    def test_dx_dz_are_elements_of_grid(self, shredded):
        catalog, result = shredded
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        values = {}
        for name in ("dx", "dz"):
            elem = catalog.registry.lookup_element(grid, name, "ARPS")
            rows = [e for e in result.elements if e.elem_id == elem.elem_id]
            assert len(rows) == 1
            assert rows[0].attr_id == grid.attr_id
            values[name] = rows[0].value_num
        assert values == {"dx": 1000.0, "dz": 500.0}

    def test_dzmin_reference_height_under_stretching(self, shredded):
        catalog, result = shredded
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        stretching = catalog.registry.lookup_attribute(
            "grid-stretching", "ARPS", parent=grid
        )
        values = {}
        for name in ("dzmin", "reference-height"):
            elem = catalog.registry.lookup_element(stretching, name, "ARPS")
            rows = [e for e in result.elements if e.elem_id == elem.elem_id]
            assert len(rows) == 1
            assert rows[0].attr_id == stretching.attr_id
            values[name] = rows[0].value_num
        assert values == {"dzmin": 100.0, "reference-height": 0.0}

    def test_inverted_list_links_stretching_to_grid(self, shredded):
        catalog, result = shredded
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        stretching = catalog.registry.lookup_attribute(
            "grid-stretching", "ARPS", parent=grid
        )
        links = [
            i
            for i in result.inverted
            if i.desc_attr_id == stretching.attr_id
            and i.anc_attr_id == grid.attr_id
        ]
        assert len(links) == 1
        assert links[0].distance == 1


class TestWholeDocument:
    def test_totals(self, shredded):
        _catalog, result = shredded
        assert len(result.clobs) == 4       # resourceID, theme x2, detailed
        assert len(result.attributes) == 5  # resourceID, theme x2, grid, stretching
        assert len(result.elements) == 11   # 1 rid + 6 theme + 2 grid + 2 stretching
        assert result.warnings == []
