"""F4 — Figure 4 and the §4 example query.

The paper's XQuery FLWOR example: objects with horizontal grid spacing
dx = 1000 m whose grid stretching has minimum vertical spacing
dzmin = 100 m.  §4 shows the equivalent myLEAD API calls; these tests
run that exact query through the Fig-4 count-matching plan and check
both the answer and the plan structure against a naive scan oracle.
"""

import pytest

from repro.baselines import evaluate_shredded_query
from repro.core import (
    MYEQUAL,
    HybridCatalog,
    MyAttr,
    MyFile,
    PlanTrace,
)
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.xmlkit import parse


def paper_query():
    """Verbatim transcription of the paper's Java API example:

    MyFile fileQry = new MyFile();
    MyAttr gridAttr = new MyAttr("grid", "ARPS");
    gridAttr.addElement("dx", "ARPS", 1000, MYEQUAL);
    MyAttr stAttr = new MyAttr("grid-stretching", "ARPS");
    stAttr.addElement("dzmin", 100, MYEQUAL);
    gridAttr.addAttribute(stAttr);
    fileQry.addAttribute(gridAttr);
    """
    file_query = MyFile()
    grid_attr = MyAttr("grid", "ARPS")
    grid_attr.add_element("dx", "ARPS", 1000, MYEQUAL)
    st_attr = MyAttr("grid-stretching", "ARPS")
    st_attr.add_element("dzmin", None, 100, MYEQUAL)
    grid_attr.add_attribute(st_attr)
    file_query.add_attribute(grid_attr)
    return file_query


NON_MATCHING_VARIANTS = [
    # Same document shape but dx = 2000: direct element criterion fails.
    FIG3_DOCUMENT.replace("<attrv>1000.000</attrv>", "<attrv>2000.000</attrv>"),
    # dzmin = 50: the sub-attribute criterion fails.
    FIG3_DOCUMENT.replace("<attrv>100.000</attrv>", "<attrv>50.000</attrv>"),
    # No grid-stretching at all.
    FIG3_DOCUMENT.replace(
        """<attr>
                        <attrlabl>grid-stretching</attrlabl>
                        <attrdefs>ARPS</attrdefs>
                        <attr>
                            <attrlabl>dzmin</attrlabl>
                            <attrdefs>ARPS</attrdefs>
                            <attrv>100.000</attrv>
                        </attr>
                        <attr>
                            <attrlabl>reference-height</attrlabl>
                            <attrdefs>ARPS</attrdefs>
                            <attrv>0</attrv>
                        </attr>
                    </attr>""",
        "",
    ),
]


@pytest.fixture()
def catalog():
    cat = HybridCatalog(lead_schema())
    define_fig3_attributes(cat)
    cat.ingest(FIG3_DOCUMENT, name="fig3")
    for i, variant in enumerate(NON_MATCHING_VARIANTS, start=2):
        cat.ingest(variant, name=f"variant-{i}")
    return cat


class TestPaperExampleQuery:
    def test_only_fig3_matches(self, catalog):
        assert catalog.query(paper_query()) == [1]

    def test_plan_stages_match_figure(self, catalog):
        trace = PlanTrace()
        catalog.query(paper_query(), trace=trace)
        assert trace.stage_names() == [
            "query-criteria",
            "elements-meeting-criteria",
            "attributes-direct",
            "attributes-indirect",
            "object-ids",
        ]

    def test_query_shredding_counts(self, catalog):
        """'there is only the metadata attribute criteria named "grid",
        which in turn has one sub-attribute — "grid-stretching"' —
        Fig 4's required counts."""
        shredded = catalog.shred_query(paper_query())
        assert len(shredded.top_qattr_ids) == 1
        grid = shredded.qattr(shredded.top_qattr_ids[0])
        assert grid.direct_elem_count == 1       # dx
        assert grid.subtree_elem_count == 2      # dx + dzmin
        assert grid.subtree_attr_count == 2      # grid + grid-stretching
        assert len(grid.child_qattr_ids) == 1

    def test_matches_scan_oracle(self, catalog):
        shredded = catalog.shred_query(paper_query())
        docs = [FIG3_DOCUMENT] + NON_MATCHING_VARIANTS
        expected = [
            i + 1
            for i, doc in enumerate(docs)
            if evaluate_shredded_query(
                shredded, catalog.shredder.shred(parse(doc))
            )
        ]
        assert catalog.query(paper_query()) == expected == [1]

    def test_avoids_recursion_via_inverted_list(self, catalog):
        """The plan consults the sub-attribute inverted list rather than
        walking the recursive attr structure: the trace's indirect stage
        exists and the match still finds dzmin two levels below
        detailed (grid -> grid-stretching -> dzmin)."""
        trace = PlanTrace()
        ids = catalog.query(paper_query(), trace=trace)
        stages = {s.name: s.rows for s in trace.stages}
        assert ids == [1]
        assert stages["attributes-indirect"] >= 1

    def test_response_round_trips(self, catalog):
        from repro.xmlkit import canonical

        ids = catalog.query(paper_query())
        response = catalog.fetch(ids)[1]
        assert canonical(parse(response)) == canonical(parse(FIG3_DOCUMENT))

    def test_equivalent_to_the_xquery_form(self, catalog):
        """The paper presents the attribute query as replacing the XQuery
        FLWOR expression.  Evaluate the FLWOR body's two conditions as
        XPath over every document (the general-XML route a CLOB store
        would take) and require the same object ids."""
        from repro.baselines import ClobCatalog

        clob = ClobCatalog(lead_schema(), registry=catalog.registry)
        for doc in [FIG3_DOCUMENT] + NON_MATCHING_VARIANTS:
            clob.ingest(doc)

        # One path anchored at the same <detailed> instance, exactly as
        # the FLWOR's $g/../attr conditions are (both relative to $g).
        expression = (
            "/LEADresource/data/geospatial/eainfo/detailed"
            "[enttyp/enttypl = 'grid' and enttyp/enttypds = 'ARPS']"
            "[attr[attrlabl = 'dx' and attrdefs = 'ARPS' and attrv = 1000]]"
            "[attr[attrlabl = 'grid-stretching' and attrdefs = 'ARPS']"
            "/attr[attrlabl = 'dzmin' and attrdefs = 'ARPS' and attrv = 100]]"
        )
        xquery_answer = clob.xpath_query(expression)
        assert catalog.query(paper_query()) == xquery_answer == [1]
