"""The full pipeline on the CLRC-style schema — the §7 generality claim
("this approach generalizes to metadata in other scientific grid
environments")."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, NodeKind, ObjectQuery, Op
from repro.grid.clrcschema import clrc_schema, define_isis_conditions, sample_study
from repro.xmlkit import canonical, parse


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request):
    store = SqliteHybridStore() if request.param == "sqlite" else None
    cat = HybridCatalog(clrc_schema(), store=store)
    define_isis_conditions(cat)
    cat.ingest(sample_study(), name="study-1")
    cat.ingest(
        sample_study("clrc:study:0002", keywords=("protein crystallography",),
                     beam_current=140.0),
        name="study-2",
    )
    return cat


class TestSchema:
    def test_partition_validates(self):
        schema = clrc_schema()
        attributes = {n.tag for n in schema.attributes()}
        assert "experimentConditions" in attributes
        assert "dataHolding" in attributes
        assert schema.attribute_by_tag("studyID").is_element

    def test_global_ordering_covers_schema(self):
        schema = clrc_schema()
        orders = [n.order for n in schema.ordered_nodes]
        assert orders == list(range(1, len(orders) + 1))

    def test_structural_sub_attribute(self):
        schema = clrc_schema()
        holding = schema.attribute_by_tag("dataHolding")
        window = holding.find_child("timeWindow")
        assert window.kind is NodeKind.SUB_ATTRIBUTE

    def test_custom_dynamic_tags(self):
        spec = clrc_schema().attribute_by_tag("experimentConditions").dynamic
        assert spec.entity_tag == "conditionSet"
        assert spec.item_tag == "condition"
        assert spec.value_tag == "reading"


class TestPipeline:
    def test_ingest_clean(self, catalog):
        receipt = catalog.ingest(sample_study("clrc:study:0003"))
        assert receipt.warnings == []

    def test_roundtrip(self, catalog):
        response = catalog.fetch([1])[1]
        assert canonical(parse(response)) == canonical(parse(sample_study()))

    def test_keyword_query(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("topic").add_element(
                "keyword", "", "protein crystallography"
            )
        )
        assert catalog.query(query) == [2]

    def test_dynamic_condition_query(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("beamline", "ISIS").add_element(
                "beam-current", "ISIS", 150.0, Op.GE
            )
        )
        assert catalog.query(query) == [1]

    def test_nested_dynamic_condition(self, catalog):
        crit = AttributeCriteria("beamline", "ISIS")
        sub = AttributeCriteria("sample-environment", "ISIS").add_element(
            "temperature", "ISIS", 4.2
        )
        crit.add_attribute(sub)
        assert catalog.query(ObjectQuery().add_attribute(crit)) == [1, 2]

    def test_structural_sub_attribute_query(self, catalog):
        crit = AttributeCriteria("dataHolding").add_element("format", "", "NeXus")
        window = AttributeCriteria("timeWindow").add_element(
            "start", "", "2005-11-01", Op.GE
        )
        crit.add_attribute(window)
        assert catalog.query(ObjectQuery().add_attribute(crit)) == [1, 2]

    def test_date_range_query(self, catalog):
        """DATE elements compare as normalized ISO strings — a range on
        releaseDate works on both backends."""
        query = ObjectQuery().add_attribute(
            AttributeCriteria("access")
            .add_element("releaseDate", "", "2006-06-30", Op.GE)
            .add_element("releaseDate", "", "2007-12-31", Op.LE)
        )
        assert catalog.query(query) == [1, 2]
        none = ObjectQuery().add_attribute(
            AttributeCriteria("access").add_element(
                "releaseDate", "", "2006-06-30", Op.LE
            )
        )
        assert catalog.query(none) == []

    def test_integer_element_query(self, catalog):
        query = ObjectQuery().add_attribute(
            AttributeCriteria("dataHolding").add_element(
                "sizeBytes", "", 10_000_000, Op.GE
            )
        )
        assert catalog.query(query) == [1, 2]

    def test_integrity(self, catalog):
        from repro.core import check_catalog

        assert check_catalog(catalog, deep=True) == []

    def test_xsd_roundtrip_of_clrc_schema(self):
        from repro.core import load_xsd, schema_to_xsd

        schema = clrc_schema()
        reloaded = load_xsd(schema_to_xsd(schema), name="CLRC")
        assert [n.tag for n in reloaded.ordered_nodes] == [
            n.tag for n in schema.ordered_nodes
        ]
        spec = reloaded.attribute_by_tag("experimentConditions").dynamic
        assert spec.item_tag == "condition"
