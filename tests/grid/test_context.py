"""Unit tests for containment/context queries (paper §7)."""

import pytest

from repro.core import AttributeCriteria, ObjectQuery
from repro.errors import QueryError
from repro.grid import ContextSearch, MyLeadService, lead_schema
from repro.xmlkit import element, pretty_print


def doc(rid, keywords):
    theme = element("theme", element("themekt", "CF"))
    for key in keywords:
        theme.append(element("themekey", key))
    return pretty_print(
        element(
            "LEADresource",
            element("resourceID", rid),
            element("data", element("idinfo", element("keywords", theme))),
        )
    )


def key_query(key):
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", key)
    )


@pytest.fixture()
def env():
    service = MyLeadService(lead_schema())
    service.create_user("ann")
    service.create_user("bob")
    search = ContextSearch(service)

    exp_a = service.create_experiment("ann", "exp-a")
    a1 = service.add_file("ann", exp_a, doc("a1", ["radar", "rain"]), public=True)
    a2 = service.add_file("ann", exp_a, doc("a2", ["model"]), public=True)

    exp_b = service.create_experiment("ann", "exp-b")
    b1 = service.add_file("ann", exp_b, doc("b1", ["model"]), public=True)

    exp_c = service.create_experiment("ann", "exp-c")
    c1 = service.add_file("ann", exp_c, doc("c1", ["radar"]))  # private

    return service, search, (exp_a, exp_b, exp_c), (a1, a2, b1, c1)


class TestContainment:
    def test_any_mode(self, env):
        _service, search, (exp_a, exp_b, exp_c), _files = env
        hits = search.experiments_containing("ann", key_query("radar"))
        assert [e.name for e in hits] == ["exp-a", "exp-c"]

    def test_all_mode(self, env):
        _service, search, (exp_a, exp_b, _exp_c), _files = env
        hits = search.experiments_containing("ann", key_query("model"), mode="all")
        assert [e.name for e in hits] == ["exp-b"]

    def test_visibility_filters_containment(self, env):
        _service, search, _exps, _files = env
        hits = search.experiments_containing("bob", key_query("radar"))
        assert [e.name for e in hits] == ["exp-a"]  # c1 is private to ann

    def test_invalid_mode(self, env):
        _service, search, _exps, _files = env
        with pytest.raises(QueryError):
            search.experiments_containing("ann", key_query("radar"), mode="some")

    def test_files_matching_in(self, env):
        _service, search, (exp_a, _b, _c), (a1, a2, _b1, _c1) = env
        assert search.files_matching_in("ann", exp_a, key_query("rain")) == [
            a1.object_id
        ]


class TestBroaderContext:
    def test_objects_in_radar_context(self, env):
        """'model outputs from experiments that also contain radar data'."""
        _service, search, _exps, (a1, a2, b1, _c1) = env
        hits = search.objects_in_context(
            "ann", context_query=key_query("radar"), object_query=key_query("model")
        )
        assert hits == [a2.object_id]  # b1's experiment lacks radar

    def test_context_without_object_filter(self, env):
        _service, search, _exps, (a1, a2, _b1, _c1) = env
        hits = search.objects_in_context("ann", key_query("radar"))
        assert hits == [a2.object_id]  # a1 is the context itself, excluded

    def test_object_is_not_its_own_context(self, env):
        _service, search, _exps, (a1, _a2, _b1, c1) = env
        # c1 matches radar but is alone in exp-c: no sibling context.
        hits = search.objects_in_context("ann", key_query("radar"))
        assert c1.object_id not in hits

    def test_two_context_matches_cover_each_other(self, env):
        service, search, (exp_a, _b, _c), _files = env
        d1 = service.add_file("ann", exp_a, doc("d1", ["radar"]), public=True)
        hits = search.objects_in_context("ann", key_query("radar"))
        # Now a1 and d1 are each other's context; a2 qualifies too.
        assert len(hits) == 3

    def test_visibility_in_context(self, env):
        _service, search, _exps, (a1, a2, _b1, _c1) = env
        hits = search.objects_in_context("bob", key_query("radar"))
        assert hits == [a2.object_id]

    def test_context_of(self, env):
        service, search, (exp_a, _b, _c), (a1, a2, _b1, _c1) = env
        assert search.context_of("ann", a1.object_id) == [a2.object_id]
        assert search.context_of("bob", a1.object_id) == [a2.object_id]
        # Objects outside any experiment (the experiment records
        # themselves) have no context.
        assert search.context_of("ann", exp_a.object_id) == []
