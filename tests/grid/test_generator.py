"""Unit tests for the synthetic corpus generator."""

import pytest

from repro.core import HybridCatalog
from repro.grid import (
    CorpusConfig,
    LeadCorpusGenerator,
    PlantedMarker,
    lead_schema,
)
from repro.xmlkit import parse


class TestDeterminism:
    def test_same_config_same_documents(self):
        a = LeadCorpusGenerator(CorpusConfig(seed=9)).document(3)
        b = LeadCorpusGenerator(CorpusConfig(seed=9)).document(3)
        assert a == b

    def test_different_seeds_differ(self):
        a = LeadCorpusGenerator(CorpusConfig(seed=9)).document(0)
        b = LeadCorpusGenerator(CorpusConfig(seed=10)).document(0)
        assert a != b

    def test_different_indices_differ(self):
        gen = LeadCorpusGenerator(CorpusConfig(seed=9))
        assert gen.document(0) != gen.document(1)


class TestShape:
    def test_documents_are_wellformed(self):
        gen = LeadCorpusGenerator(CorpusConfig(seed=2))
        for doc in gen.documents(5):
            assert parse(doc).root.tag == "LEADresource"

    def test_theme_count_honored(self):
        gen = LeadCorpusGenerator(CorpusConfig(seed=2, themes=4))
        doc = parse(gen.document(0))
        keywords = doc.root.find("data").find("idinfo").find("keywords")
        assert len(keywords.find_all("theme")) == 4

    def test_keys_per_theme_honored(self):
        gen = LeadCorpusGenerator(CorpusConfig(seed=2, keys_per_theme=5))
        doc = parse(gen.document(0))
        theme = doc.root.find("data").find("idinfo").find("keywords").find("theme")
        assert len(theme.find_all("themekey")) == 5

    def test_dynamic_groups_honored(self):
        gen = LeadCorpusGenerator(CorpusConfig(seed=2, dynamic_groups=3))
        doc = parse(gen.document(0))
        eainfo = doc.root.find("data").find("geospatial").find("eainfo")
        assert len(eainfo.find_all("detailed")) == 3

    def test_zero_dynamic_groups(self):
        gen = LeadCorpusGenerator(CorpusConfig(seed=2, dynamic_groups=0))
        doc = parse(gen.document(0))
        eainfo = doc.root.find("data").find("geospatial").find("eainfo")
        assert eainfo is None or eainfo.find_all("detailed") == []

    def test_nesting_depth(self):
        gen = LeadCorpusGenerator(CorpusConfig(seed=2, dynamic_depth=4, dynamic_groups=1))
        doc = parse(gen.document(0))
        detailed = doc.root.find("data").find("geospatial").find("eainfo").find("detailed")
        depth = 0
        node = detailed
        while True:
            nested = [
                a for a in node.find_all("attr")
                if a.find_all("attr")
            ]
            if not nested:
                break
            node = nested[0]
            depth += 1
        assert depth == 3  # dynamic_depth - 1 extra levels

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CorpusConfig(dynamic_depth=0)
        with pytest.raises(ValueError):
            CorpusConfig(models=("NOPE",))
        with pytest.raises(ValueError):
            PlantedMarker("k", 0)


class TestPlantedMarkers:
    def test_exact_selectivity(self):
        marker = PlantedMarker("magic_keyword", 4)
        gen = LeadCorpusGenerator(CorpusConfig(seed=2, planted=[marker]))
        hits = [
            i for i, doc in enumerate(gen.documents(20)) if "magic_keyword" in doc
        ]
        assert hits == [0, 4, 8, 12, 16]
        assert marker.selectivity == 0.25

    def test_marker_queryable_end_to_end(self):
        from repro.grid import WorkloadGenerator

        marker = PlantedMarker("magic_keyword", 4)
        config = CorpusConfig(seed=2, planted=[marker])
        gen = LeadCorpusGenerator(config)
        catalog = HybridCatalog(lead_schema())
        gen.register_definitions(catalog)
        catalog.ingest_many(list(gen.documents(12)))
        query = WorkloadGenerator(config).marker_query(marker)
        assert catalog.query(query) == [1, 5, 9]


class TestDefinitions:
    def test_corpus_shreds_clean_after_registration(self):
        config = CorpusConfig(seed=5, dynamic_depth=3)
        gen = LeadCorpusGenerator(config)
        catalog = HybridCatalog(lead_schema())
        gen.register_definitions(catalog)
        receipts = catalog.ingest_many(list(gen.documents(10)))
        assert sum(len(r.warnings) for r in receipts) == 0

    def test_without_registration_warnings_accumulate(self):
        config = CorpusConfig(seed=5)
        gen = LeadCorpusGenerator(config)
        catalog = HybridCatalog(lead_schema())
        receipts = catalog.ingest_many(list(gen.documents(3)))
        assert sum(len(r.warnings) for r in receipts) > 0
