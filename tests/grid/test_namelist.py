"""Unit tests for the Fortran namelist parser and its rendering as
dynamic metadata attributes."""

import pytest

from repro.core import HybridCatalog, ValueType
from repro.grid import (
    NamelistError,
    NamelistGroup,
    lead_schema,
    namelist_to_detailed,
    parse_namelist,
    register_namelist_definitions,
)

ARPS_SAMPLE = """
! ARPS input file fragment
&grid
  nx = 67, ny = 67, nz = 35,
  dx = 1000.0,
  dz = 500.0,
  strhopt = 1,      ! vertical stretching option
  dzmin = 100.0,
/
&timestep
  dtbig = 6.0, dtsml = 1.0,
  tstop = 21600.0,
/
"""


class TestParsing:
    def test_groups_in_order(self):
        groups = parse_namelist(ARPS_SAMPLE)
        assert [g.name for g in groups] == ["grid", "timestep"]

    def test_scalar_values_typed(self):
        grid = parse_namelist(ARPS_SAMPLE)[0]
        assert grid.parameters["nx"] == [67]
        assert grid.parameters["dx"] == [1000.0]

    def test_comments_stripped(self):
        grid = parse_namelist(ARPS_SAMPLE)[0]
        assert grid.parameters["strhopt"] == [1]

    def test_strings_quoted(self):
        groups = parse_namelist("&g\n f = 'input.bin',\n s = \"two words\"\n/")
        assert groups[0].parameters["f"] == ["input.bin"]
        assert groups[0].parameters["s"] == ["two words"]

    def test_string_with_comment_char_inside(self):
        groups = parse_namelist("&g\n f = 'a!b'  ! real comment\n/")
        assert groups[0].parameters["f"] == ["a!b"]

    def test_logicals(self):
        groups = parse_namelist("&g\n a = .true., b = .false.\n/")
        assert groups[0].parameters["a"] == [True]
        assert groups[0].parameters["b"] == [False]

    def test_arrays(self):
        groups = parse_namelist("&g\n v = 1.0, 2.0, 3.0\n/")
        assert groups[0].parameters["v"] == [1.0, 2.0, 3.0]

    def test_repeat_counts(self):
        groups = parse_namelist("&g\n v = 3*0.5\n/")
        assert groups[0].parameters["v"] == [0.5, 0.5, 0.5]

    def test_fortran_double_exponent(self):
        groups = parse_namelist("&g\n x = 1.5d-3\n/")
        assert groups[0].parameters["x"] == [0.0015]

    def test_multiline_array_continuation(self):
        groups = parse_namelist("&g\n v = 1.0,\n     2.0,\n     3.0\n/")
        assert groups[0].parameters["v"] == [1.0, 2.0, 3.0]

    def test_group_names_lowercased(self):
        assert parse_namelist("&GRID\n x = 1\n/")[0].name == "grid"

    def test_scalars_helper(self):
        groups = parse_namelist("&g\n a = 1\n v = 1, 2\n/")
        assert groups[0].scalars() == {"a": 1}

    def test_end_terminator_variants(self):
        assert parse_namelist("&g\n x = 1\n&end")[0].parameters["x"] == [1]


class TestParsingErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "x = 1\n",                       # content outside group
            "&g\n x = 1\n",                  # unterminated group
            "&g\n&h\n/\n/",                  # nested group start
            "&\n/",                          # empty group name
            "&g\n = 1\n/",                   # missing name
            "&g\n x = \n/",                  # missing value
            "&g\n x = 'unterminated\n/",     # bad string
            "&g\n x = a*b\n/",               # bad repeat
            "/",                             # terminator alone
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(NamelistError):
            parse_namelist(bad)


class TestRendering:
    def test_detailed_structure(self):
        grid = parse_namelist(ARPS_SAMPLE)[0]
        detailed = namelist_to_detailed(grid, "ARPS")
        enttyp = detailed.find("enttyp")
        assert enttyp.find("enttypl").text() == "grid"
        assert enttyp.find("enttypds").text() == "ARPS"
        labels = [a.find("attrlabl").text() for a in detailed.find_all("attr")]
        assert labels[:3] == ["nx", "ny", "nz"]

    def test_array_renders_repeated_items(self):
        group = NamelistGroup("g")
        group.set("v", [1.0, 2.0])
        detailed = namelist_to_detailed(group, "M")
        values = [a.find("attrv").text() for a in detailed.find_all("attr")]
        assert values == ["1.0", "2.0"]

    def test_logical_renders_fortran_form(self):
        group = NamelistGroup("g")
        group.set("flag", [True])
        detailed = namelist_to_detailed(group, "M")
        assert detailed.find("attr").find("attrv").text() == ".true."


class TestEndToEnd:
    def test_namelist_to_catalog_roundtrip(self):
        """The §3 motivation: ARPS namelist parameters become queryable
        dynamic metadata attributes."""
        from repro.core import AttributeCriteria, ObjectQuery, Op
        from repro.xmlkit import element, pretty_print

        catalog = HybridCatalog(lead_schema())
        groups = parse_namelist(ARPS_SAMPLE)
        defs = register_namelist_definitions(catalog, groups, "ARPS")
        assert set(defs) == {"grid", "timestep"}

        eainfo = element("eainfo")
        for group in groups:
            eainfo.append(namelist_to_detailed(group, "ARPS"))
        doc = element(
            "LEADresource",
            element("resourceID", "run-1"),
            element("data", element("idinfo"), element("geospatial", eainfo)),
        )
        receipt = catalog.ingest(pretty_print(doc))
        assert receipt.warnings == []

        query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element("dzmin", "ARPS", 150.0, Op.LE)
        )
        assert catalog.query(query) == [receipt.object_id]

    def test_registered_types_inferred(self):
        catalog = HybridCatalog(lead_schema())
        groups = parse_namelist(ARPS_SAMPLE)
        register_namelist_definitions(catalog, groups, "ARPS")
        grid = catalog.registry.lookup_attribute("grid", "ARPS")
        nx = catalog.registry.lookup_element(grid, "nx", "ARPS")
        dx = catalog.registry.lookup_element(grid, "dx", "ARPS")
        assert nx.value_type is ValueType.INTEGER
        assert dx.value_type is ValueType.FLOAT
