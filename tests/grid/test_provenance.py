"""Unit tests for provenance links (the LEAD lineage motif)."""

import pytest

from repro.core import AttributeCriteria, ObjectQuery
from repro.errors import CatalogError
from repro.grid import MyLeadService, lead_schema
from repro.xmlkit import element, pretty_print


def doc(rid, keyword):
    return pretty_print(
        element(
            "LEADresource",
            element("resourceID", rid),
            element(
                "data",
                element(
                    "idinfo",
                    element(
                        "keywords",
                        element(
                            "theme",
                            element("themekt", "CF"),
                            element("themekey", keyword),
                        ),
                    ),
                ),
            ),
        )
    )


@pytest.fixture()
def env():
    service = MyLeadService(lead_schema())
    service.create_user("ann")
    service.create_user("bob")
    exp = service.create_experiment("ann", "chain")
    raw = service.add_file("ann", exp, doc("raw", "radar"), public=True)
    initial = service.add_file("ann", exp, doc("init", "analysis"), public=True)
    forecast = service.add_file("ann", exp, doc("fcst", "model"), public=True)
    service.record_derivation("ann", initial.object_id, raw.object_id)
    service.record_derivation("ann", forecast.object_id, initial.object_id)
    return service, raw.object_id, initial.object_id, forecast.object_id


def key_query(key):
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", key)
    )


class TestLinks:
    def test_direct_sources(self, env):
        service, raw, initial, forecast = env
        assert service.sources_of("ann", forecast) == [initial]
        assert service.sources_of("ann", initial) == [raw]
        assert service.sources_of("ann", raw) == []

    def test_transitive_closure(self, env):
        service, raw, initial, forecast = env
        assert service.provenance_closure(forecast) == {raw, initial}

    def test_derived_products(self, env):
        service, raw, initial, forecast = env
        assert service.derived_products("ann", raw) == [initial]
        assert service.derived_products("ann", initial) == [forecast]

    def test_cycle_rejected(self, env):
        service, raw, _initial, forecast = env
        with pytest.raises(CatalogError, match="cycle"):
            service.record_derivation("ann", raw, forecast)

    def test_self_derivation_rejected(self, env):
        service, raw, *_ = env
        with pytest.raises(CatalogError):
            service.record_derivation("ann", raw, raw)

    def test_only_owner_records(self, env):
        service, raw, initial, _forecast = env
        with pytest.raises(CatalogError, match="belongs to"):
            service.record_derivation("bob", initial, raw)

    def test_invisible_source_rejected(self, env):
        service, _raw, _initial, forecast = env
        exp = service.create_experiment("bob", "private-exp")
        hidden = service.add_file("bob", exp, doc("h", "secret"))
        with pytest.raises(CatalogError, match="not visible"):
            service.record_derivation("ann", forecast, hidden.object_id)


class TestProvenanceQueries:
    def test_derived_from_matching(self, env):
        """'products computed from radar data' finds the whole chain."""
        service, raw, initial, forecast = env
        assert service.query_derived_from_matching("ann", key_query("radar")) == [
            initial, forecast,
        ]

    def test_no_matches(self, env):
        service, *_ = env
        assert service.query_derived_from_matching("ann", key_query("nothing")) == []

    def test_visibility_filters_results(self, env):
        service, raw, initial, forecast = env
        service.unpublish("ann", forecast)
        assert service.query_derived_from_matching("bob", key_query("radar")) == [
            initial,
        ]

    def test_sources_filtered_by_visibility(self, env):
        service, raw, initial, _forecast = env
        service.unpublish("ann", raw)
        assert service.sources_of("bob", initial) == []
        assert service.sources_of("ann", initial) == [raw]
