"""Unit tests for the myLEAD-like service facade."""

import pytest

from repro.core import AttributeCriteria, ObjectQuery
from repro.errors import CatalogError
from repro.grid import FIG3_DOCUMENT, MyLeadService, lead_schema


@pytest.fixture()
def service():
    svc = MyLeadService(lead_schema())
    svc.create_user("ann")
    svc.create_user("bob")
    return svc


def theme_query():
    return ObjectQuery().add_attribute(AttributeCriteria("theme"))


class TestUsers:
    def test_duplicate_user_rejected(self, service):
        with pytest.raises(CatalogError):
            service.create_user("ann")

    def test_empty_name_rejected(self, service):
        with pytest.raises(CatalogError):
            service.create_user("")

    def test_unknown_user_rejected_everywhere(self, service):
        with pytest.raises(CatalogError):
            service.create_experiment("ghost", "x")
        with pytest.raises(CatalogError):
            service.query("ghost", theme_query())

    def test_users_listed(self, service):
        assert service.users() == ["ann", "bob"]


class TestExperiments:
    def test_experiment_is_cataloged_object(self, service):
        exp = service.create_experiment("ann", "tornado-study")
        assert service.catalog.object_name(exp.object_id) == "tornado-study"

    def test_add_file_links_to_experiment(self, service):
        exp = service.create_experiment("ann", "e1")
        receipt = service.add_file("ann", exp, FIG3_DOCUMENT, name="f1")
        assert receipt.object_id in exp.file_ids

    def test_cannot_add_to_foreign_experiment(self, service):
        exp = service.create_experiment("ann", "e1")
        with pytest.raises(CatalogError, match="belongs to"):
            service.add_file("bob", exp, FIG3_DOCUMENT)

    def test_experiment_lookup(self, service):
        exp = service.create_experiment("ann", "e1")
        assert service.experiment(exp.experiment_id) is exp
        with pytest.raises(CatalogError):
            service.experiment(999)


class TestVisibility:
    def test_private_by_default(self, service):
        exp = service.create_experiment("ann", "e1")
        receipt = service.add_file("ann", exp, FIG3_DOCUMENT)
        assert service.query("ann", theme_query()) == [receipt.object_id]
        assert service.query("bob", theme_query()) == []

    def test_publish_makes_visible(self, service):
        exp = service.create_experiment("ann", "e1")
        receipt = service.add_file("ann", exp, FIG3_DOCUMENT)
        service.publish("ann", receipt.object_id)
        assert service.query("bob", theme_query()) == [receipt.object_id]

    def test_unpublish_hides_again(self, service):
        exp = service.create_experiment("ann", "e1")
        receipt = service.add_file("ann", exp, FIG3_DOCUMENT, public=True)
        service.unpublish("ann", receipt.object_id)
        assert service.query("bob", theme_query()) == []

    def test_only_owner_can_publish(self, service):
        exp = service.create_experiment("ann", "e1")
        receipt = service.add_file("ann", exp, FIG3_DOCUMENT)
        with pytest.raises(CatalogError):
            service.publish("bob", receipt.object_id)

    def test_fetch_enforces_visibility(self, service):
        exp = service.create_experiment("ann", "e1")
        receipt = service.add_file("ann", exp, FIG3_DOCUMENT)
        with pytest.raises(CatalogError, match="not visible"):
            service.fetch("bob", [receipt.object_id])
        assert receipt.object_id in service.fetch("ann", [receipt.object_id])

    def test_search_returns_only_visible(self, service):
        exp_a = service.create_experiment("ann", "e1")
        service.add_file("ann", exp_a, FIG3_DOCUMENT)
        exp_b = service.create_experiment("bob", "e2")
        public = service.add_file("bob", exp_b, FIG3_DOCUMENT, public=True)
        results = service.search("ann", theme_query())
        # ann sees her own file and bob's published one.
        assert len(results) == 2

    def test_experiment_contents_filtered(self, service):
        exp = service.create_experiment("ann", "e1")
        own = service.add_file("ann", exp, FIG3_DOCUMENT)
        assert service.experiment_contents("ann", exp) == [own.object_id]
        assert service.experiment_contents("bob", exp) == []


class TestVisibilityEdgeCases:
    def test_unpublish_mid_query_hides_object(self, service):
        """An unpublish landing between the catalog match and the
        visibility filter must hide the object from the result — the
        filter sees the bookkeeping as of one consistent point."""
        exp = service.create_experiment("ann", "e1")
        receipt = service.add_file("ann", exp, FIG3_DOCUMENT, public=True)
        real_query = service.catalog.query

        def query_then_unpublish(query, **kwargs):
            ids = real_query(query, **kwargs)
            service.unpublish("ann", receipt.object_id)
            return ids

        service.catalog.query = query_then_unpublish
        try:
            assert service.query("bob", theme_query()) == []
        finally:
            service.catalog.query = real_query

    def test_mixed_fetch_counts_every_denied_object(self, service):
        """A fetch mixing visible and invisible ids raises, names every
        hidden id, and bumps the denied counter once per hidden object
        (it used to stop at the first)."""
        exp = service.create_experiment("ann", "e1")
        own = service.add_file("ann", exp, FIG3_DOCUMENT, name="own")
        hidden_a = service.add_file("ann", exp, FIG3_DOCUMENT, name="h1")
        hidden_b = service.add_file("ann", exp, FIG3_DOCUMENT, name="h2")
        service.publish("ann", own.object_id)
        denied = service.catalog.metrics.counter("service_visibility_denied_total")
        before = denied.value
        with pytest.raises(CatalogError, match="not visible") as err:
            service.fetch(
                "bob", [own.object_id, hidden_a.object_id, hidden_b.object_id]
            )
        assert denied.value == before + 2
        assert str(hidden_a.object_id) in str(err.value)
        assert str(hidden_b.object_id) in str(err.value)

    def test_experiment_contents_for_foreign_user(self, service):
        """A foreign user sees only the published subset of another
        user's experiment."""
        exp = service.create_experiment("ann", "e1")
        private = service.add_file("ann", exp, FIG3_DOCUMENT, name="priv")
        public = service.add_file("ann", exp, FIG3_DOCUMENT, public=True)
        assert service.experiment_contents("bob", exp) == [public.object_id]
        assert private.object_id not in service.experiment_contents("bob", exp)

    def test_provenance_cycle_rejected_through_chain(self, service):
        """A cycle closed through a multi-hop derivation chain
        (a <- b <- c, then a derives from c) is rejected."""
        exp = service.create_experiment("ann", "e1")
        a = service.add_file("ann", exp, FIG3_DOCUMENT, name="a").object_id
        b = service.add_file("ann", exp, FIG3_DOCUMENT, name="b").object_id
        c = service.add_file("ann", exp, FIG3_DOCUMENT, name="c").object_id
        service.record_derivation("ann", b, a)
        service.record_derivation("ann", c, b)
        with pytest.raises(CatalogError, match="cycle"):
            service.record_derivation("ann", a, c)
        # The chain itself is intact and walkable.
        assert service.provenance_closure(c) == {a, b}


class TestPrivateDefinitions:
    def test_private_attribute_scoped_to_user(self, service):
        attr = service.define_private_attribute("ann", "my-model", "ARPS")
        assert attr.scope == "ann"
        assert service.catalog.registry.lookup_attribute("my-model", "ARPS") is None
        assert (
            service.catalog.registry.lookup_attribute("my-model", "ARPS", user="ann")
            is attr
        )
