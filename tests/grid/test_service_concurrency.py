"""Thread-safety regressions for the service facade.

The service bookkeeping dicts were originally unguarded; these tests
drive the exact interleavings that corrupted them — publish/unpublish
racing a query's visibility filter, concurrent create_user of the same
name, and a mixed 16-thread storm — and pin the metering contract
(one public op == one ``service_ops_total`` increment).
"""

import threading

import pytest

from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery
from repro.core.integrity import check_catalog
from repro.errors import CatalogError
from repro.grid import FIG3_DOCUMENT, MyLeadService, lead_schema
from repro.obs import MetricsRegistry


def theme_query():
    return ObjectQuery().add_attribute(AttributeCriteria("theme"))


def _service(registry=None):
    registry = registry if registry is not None else MetricsRegistry()
    catalog = HybridCatalog(lead_schema(), metrics=registry)
    return MyLeadService(lead_schema(), catalog)


def _ops_by_label(registry):
    family = registry.get("service_ops_total")
    return {
        (labels["op"], labels["user"]): metric.value
        for labels, metric in family.series()
    }


class TestPublishWhileQuery:
    def test_publish_unpublish_racing_queries(self):
        """A publish/unpublish toggle racing queries must never crash
        the visibility filter, and every query must observe either the
        published or the unpublished state — nothing in between."""
        service = _service()
        service.create_user("ann")
        service.create_user("bob")
        exp = service.create_experiment("ann", "e1")
        receipts = [
            service.add_file("ann", exp, FIG3_DOCUMENT, name=f"f{i}")
            for i in range(4)
        ]
        ids = [r.object_id for r in receipts]
        stop = threading.Event()
        errors = []

        def toggler():
            try:
                while not stop.is_set():
                    for oid in ids:
                        service.publish("ann", oid)
                    for oid in ids:
                        service.unpublish("ann", oid)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def querier():
            try:
                for _ in range(60):
                    seen = service.query("bob", theme_query())
                    # bob owns nothing: everything he sees was published.
                    assert set(seen) <= set(ids)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=toggler)]
        threads += [threading.Thread(target=querier) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads[1:]:
            t.join()
        stop.set()
        threads[0].join()
        assert errors == []

    def test_concurrent_create_user_single_winner(self):
        """The check-then-act race: exactly one of N racing creates of
        the same name succeeds."""
        service = _service()
        barrier = threading.Barrier(8)
        outcomes = []

        def create():
            barrier.wait()
            try:
                service.create_user("carol")
                outcomes.append("ok")
            except CatalogError:
                outcomes.append("dup")

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("ok") == 1
        assert service.users() == ["carol"]

    def test_mixed_storm_leaves_catalog_consistent(self):
        """16 threads of mixed create/add/publish/query/fetch: no
        exceptions, fsck-clean catalog, bookkeeping consistent."""
        service = _service()
        for i in range(16):
            service.create_user(f"u{i}")
        experiments = {
            f"u{i}": service.create_experiment(f"u{i}", f"exp-{i}")
            for i in range(16)
        }
        errors = []

        def worker(i):
            user = f"u{i}"
            try:
                for round_no in range(5):
                    receipt = service.add_file(
                        user, experiments[user], FIG3_DOCUMENT,
                        name=f"{user}-{round_no}",
                    )
                    service.publish(user, receipt.object_id)
                    visible = service.query(user, theme_query())
                    assert receipt.object_id in visible
                    docs = service.fetch(user, [receipt.object_id])
                    assert receipt.object_id in docs
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert check_catalog(service.catalog) == []
        # Every file registered exactly once, under its owner.
        for i in range(16):
            user = f"u{i}"
            contents = service.experiment_contents(user, experiments[user])
            assert len(contents) == 5


class TestOpsAccounting:
    def test_search_counts_one_op(self):
        """One search == one service op: the query and fetch legs it is
        composed of must not increment their own labels (regression:
        search used to count as three ops)."""
        registry = MetricsRegistry()
        service = _service(registry)
        service.create_user("ann")
        exp = service.create_experiment("ann", "e1")
        service.add_file("ann", exp, FIG3_DOCUMENT, name="f1")
        before = _ops_by_label(registry)
        service.search("ann", theme_query())
        after = _ops_by_label(registry)
        assert after[("search", "ann")] == before.get(("search", "ann"), 0) + 1
        assert after.get(("query", "ann"), 0) == before.get(("query", "ann"), 0)
        assert after.get(("fetch", "ann"), 0) == before.get(("fetch", "ann"), 0)

    def test_each_public_op_counts_exactly_once(self):
        registry = MetricsRegistry()
        service = _service(registry)
        service.create_user("ann")
        exp = service.create_experiment("ann", "e1")
        receipt = service.add_file("ann", exp, FIG3_DOCUMENT, name="f1")
        service.publish("ann", receipt.object_id)
        service.query("ann", theme_query())
        service.fetch("ann", [receipt.object_id])
        service.search("ann", theme_query())
        service.unpublish("ann", receipt.object_id)
        assert _ops_by_label(registry) == {
            ("create_user", "ann"): 1,
            ("create_experiment", "ann"): 1,
            ("add_file", "ann"): 1,
            ("publish", "ann"): 1,
            ("query", "ann"): 1,
            ("fetch", "ann"): 1,
            ("search", "ann"): 1,
            ("unpublish", "ann"): 1,
        }

    def test_search_runs_visibility_filter_once(self):
        """The fetch leg of search trusts the filtered id list: the
        denied counter must not move for a search that only returns
        visible objects (it used to double-filter)."""
        registry = MetricsRegistry()
        service = _service(registry)
        service.create_user("ann")
        service.create_user("bob")
        exp = service.create_experiment("ann", "e1")
        service.add_file("ann", exp, FIG3_DOCUMENT, name="f1")
        denied = registry.counter("service_visibility_denied_total")
        before = denied.value
        results = service.search("ann", theme_query())
        assert len(results) == 1
        assert denied.value == before
        # bob is denied ann's file exactly once per search.
        service.search("bob", theme_query())
        assert denied.value == before + 1
