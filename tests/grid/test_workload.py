"""Unit tests for the query workload generator."""

import pytest

from repro.core import HybridCatalog, ObjectQuery
from repro.grid import (
    CorpusConfig,
    LeadCorpusGenerator,
    PlantedMarker,
    WorkloadGenerator,
    lead_schema,
)


@pytest.fixture(scope="module")
def config():
    return CorpusConfig(seed=77, dynamic_depth=3, planted=[PlantedMarker("wk", 3)])


@pytest.fixture(scope="module")
def catalog(config):
    cat = HybridCatalog(lead_schema())
    gen = LeadCorpusGenerator(config)
    gen.register_definitions(cat)
    cat.ingest_many(list(gen.documents(15)))
    return cat


class TestDeterminism:
    def test_same_seed_same_queries(self, config):
        a = WorkloadGenerator(config, seed=5).keyword_query(3)
        b = WorkloadGenerator(config, seed=5).keyword_query(3)
        assert a.attributes[0].elements[0].value == b.attributes[0].elements[0].value

    def test_different_indices_vary(self, config):
        wl = WorkloadGenerator(config)
        values = {
            wl.keyword_query(i).attributes[0].elements[0].value for i in range(10)
        }
        assert len(values) > 1


class TestShapes:
    def test_keyword_query_shape(self, config):
        q = WorkloadGenerator(config).keyword_query(0)
        assert q.attributes[0].name == "theme"
        assert q.attributes[0].elements[0].name == "themekey"

    def test_parameter_query_is_numeric_range(self, config):
        from repro.core import Op

        q = WorkloadGenerator(config).parameter_query(0)
        criterion = q.attributes[0].elements[0]
        assert criterion.op in (Op.LE, Op.GE)
        assert isinstance(criterion.value, (int, float))

    def test_nested_query_depth(self, config):
        q = WorkloadGenerator(config).nested_query(0, depth=2)
        top = q.attributes[0]
        assert len(top.sub_attributes) == 1
        assert len(top.sub_attributes[0].sub_attributes) == 1
        deepest = top.sub_attributes[0].sub_attributes[0]
        assert deepest.elements  # criterion lives at the deepest level

    def test_conjunctive_query_has_two_tops(self, config):
        q = WorkloadGenerator(config).conjunctive_query(0)
        assert len(q.attributes) == 2

    def test_mixed_proportions(self, config):
        queries = WorkloadGenerator(config).mixed(20)
        assert len(queries) == 20
        keyword = sum(1 for q in queries if q.attributes[0].name == "theme" and len(q.attributes) == 1)
        assert keyword == 8  # 40%


class TestExecutability:
    def test_all_mixed_queries_run(self, config, catalog):
        for query in WorkloadGenerator(config).mixed(20):
            catalog.query(query)  # must not raise

    def test_nested_only_runs(self, config, catalog):
        for query in WorkloadGenerator(config).nested_only(5, depth=2):
            catalog.query(query)

    def test_keyword_only_runs(self, config, catalog):
        queries = WorkloadGenerator(config).keyword_only(5)
        assert len(queries) == 5
        assert all(q.attributes[0].name == "theme" for q in queries)
        for query in queries:
            catalog.query(query)

    def test_marker_query_selectivity(self, config, catalog):
        marker = config.planted[0]
        ids = catalog.query(WorkloadGenerator(config).marker_query(marker))
        assert ids == [1, 4, 7, 10, 13]
