"""Integration: the memory and sqlite hybrid stores agree exactly."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import HybridCatalog, PlanTrace
from repro.grid import LeadCorpusGenerator, WorkloadGenerator, lead_schema
from repro.xmlkit import canonical, parse


@pytest.fixture(scope="module")
def catalogs(corpus_config, corpus_docs):
    memory = HybridCatalog(lead_schema())
    LeadCorpusGenerator(corpus_config).register_definitions(memory)
    memory.ingest_many(corpus_docs)
    sqlite = HybridCatalog(lead_schema(), store=SqliteHybridStore())
    LeadCorpusGenerator(corpus_config).register_definitions(sqlite)
    sqlite.ingest_many(corpus_docs)
    return memory, sqlite


class TestQueryEquivalence:
    def test_mixed_workload(self, catalogs, corpus_config):
        memory, sqlite = catalogs
        for i, query in enumerate(WorkloadGenerator(corpus_config).mixed(30)):
            assert memory.query(query) == sqlite.query(query), f"query {i}"

    def test_markers(self, catalogs, corpus_config):
        memory, sqlite = catalogs
        workload = WorkloadGenerator(corpus_config)
        for marker in corpus_config.planted:
            query = workload.marker_query(marker)
            assert memory.query(query) == sqlite.query(query)

    def test_traces_have_same_stage_structure(self, catalogs, corpus_config):
        memory, sqlite = catalogs
        query = WorkloadGenerator(corpus_config).nested_query(1, depth=2)
        mtrace, strace = PlanTrace(), PlanTrace()
        memory.query(query, trace=mtrace)
        sqlite.query(query, trace=strace)
        assert mtrace.stage_names() == strace.stage_names()
        # Final stage (object ids) must agree row for row.
        assert mtrace.stages[-1].rows == strace.stages[-1].rows


class TestResponseEquivalence:
    def test_responses_canonically_identical(self, catalogs, corpus_docs):
        memory, sqlite = catalogs
        ids = list(range(1, len(corpus_docs) + 1))
        mem_responses = memory.fetch(ids)
        sql_responses = sqlite.fetch(ids)
        for oid in ids:
            assert canonical(parse(mem_responses[oid])) == canonical(
                parse(sql_responses[oid])
            ), f"object {oid}"

    def test_responses_match_originals(self, catalogs, corpus_docs):
        _memory, sqlite = catalogs
        responses = sqlite.fetch([3, 11, 19])
        for oid in (3, 11, 19):
            assert canonical(parse(responses[oid])) == canonical(
                parse(corpus_docs[oid - 1])
            )


class TestStorageEquivalence:
    def test_same_logical_row_counts(self, catalogs):
        memory, sqlite = catalogs
        mem = {n: r for n, r, _b in memory.storage_report()}
        sql = {n: r for n, r, _b in sqlite.storage_report()}
        for table in ("objects", "clobs", "attributes", "elements", "attr_ancestors"):
            assert mem[table] == sql[table], table
