"""Concurrent read path: many readers, one writer, same answers.

The tentpole contract of the concurrency layer, checked end to end on
both backends:

* **stress** — reader threads hammer ``query`` + ``fetch`` while the
  main thread ingests and deletes; no reader may ever crash, see a
  torn row set (an object id it cannot fetch), or deadlock.  After the
  dust settles the catalog passes a full integrity check (fsck);
* **equivalence** — cached results == fresh (trace-bypassed) results ==
  a single-threaded reference catalog fed the same writes, and a
  hypothesis property drives randomized write/read interleavings
  against a serial oracle;
* **isolation** — a query racing a write returns either the pre- or
  post-write answer, never a mixture, and the result cache never
  serves a pre-write answer after the write completes.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op, PlanTrace
from repro.core.integrity import check_catalog
from repro.grid import CF_STANDARD_NAMES, CorpusConfig, LeadCorpusGenerator, lead_schema

CONFIG = CorpusConfig(seed=1212, themes=2, keys_per_theme=3, dynamic_groups=2,
                      params_per_group=4, dynamic_depth=2)
GENERATOR = LeadCorpusGenerator(CONFIG)
DOCUMENTS = list(GENERATOR.documents(24))

BACKENDS = ("memory", "sqlite")


def build_catalog(backend, tmp_path=None):
    if backend == "sqlite":
        path = str(tmp_path / "concurrency.db") if tmp_path is not None else ":memory:"
        store = SqliteHybridStore(path)
    else:
        store = None
    catalog = HybridCatalog(lead_schema(), store=store)
    GENERATOR.register_definitions(catalog)
    return catalog


def theme_query(keyword):
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", keyword, Op.CONTAINS)
    )


QUERIES = [theme_query(kw) for kw in CF_STANDARD_NAMES[:4]]


@pytest.mark.parametrize("backend", BACKENDS)
def test_readers_survive_concurrent_writes(backend, tmp_path):
    """Reader threads never crash, never see an id they cannot fetch,
    and the catalog is fsck-clean after the stress run."""
    catalog = build_catalog(backend, tmp_path)
    catalog.ingest_many(DOCUMENTS[:8])
    errors = []
    stop = threading.Event()

    def reader(query):
        try:
            while not stop.is_set():
                ids = catalog.query(query)
                # query and fetch are separate read sections, so a
                # delete may land between them — fetch then skips the
                # removed id.  What must never happen: fetch raising,
                # or returning an object the query did not name.
                responses = catalog.fetch(ids)
                assert set(responses) <= set(ids)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
            stop.set()

    threads = [threading.Thread(target=reader, args=(q,)) for q in QUERIES * 2]
    for t in threads:
        t.start()
    try:
        for doc in DOCUMENTS[8:20]:
            catalog.ingest(doc)
        for object_id in catalog.query(ObjectQuery().add_attribute(
                AttributeCriteria("theme")))[:4]:
            catalog.delete(object_id)
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert not errors, errors
    assert check_catalog(catalog, deep=True) == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_equals_serial_and_cache_equals_fresh(backend, tmp_path):
    """N threads querying concurrently agree with each other, with a
    fresh (cache-bypassing) execution, and with a single-threaded
    reference catalog fed the same documents."""
    catalog = build_catalog(backend, tmp_path)
    catalog.ingest_many(DOCUMENTS[:12])
    reference = build_catalog("memory")
    reference.ingest_many(DOCUMENTS[:12])

    for query in QUERIES:
        expected = reference.query(query)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(lambda q: catalog.query(q), [query] * 8))
        for result in results:
            assert result == expected
        # An explicit trace bypasses the result cache: fresh execution
        # must agree with whatever the cache has been serving.
        assert catalog.query(query, trace=PlanTrace()) == expected
    assert catalog.result_cache.hits > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_write_invalidates_cached_results(backend, tmp_path):
    """After a write commits, no reader may ever get the pre-write
    answer again — on a hit or a miss."""
    catalog = build_catalog(backend, tmp_path)
    catalog.ingest_many(DOCUMENTS[:6])
    query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
    before = catalog.query(query)
    assert catalog.query(query) == before  # primed: served from cache
    catalog.ingest(DOCUMENTS[6])
    after = catalog.query(query)
    assert after != before
    assert catalog.query(query) == after
    catalog.delete(after[0])
    assert after[0] not in catalog.query(query)


@pytest.mark.parametrize("backend", BACKENDS)
def test_query_racing_write_sees_before_or_after_never_between(backend, tmp_path):
    """A reader racing one ingest returns the pre-write or post-write
    id list, never a partial shred."""
    catalog = build_catalog(backend, tmp_path)
    catalog.ingest_many(DOCUMENTS[:6])
    query = ObjectQuery().add_attribute(AttributeCriteria("theme"))
    before = catalog.query(query, trace=PlanTrace())
    observed = []
    errors = []
    barrier = threading.Barrier(2)

    def reader():
        try:
            barrier.wait()
            for _ in range(50):
                observed.append(tuple(catalog.query(query)))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    thread = threading.Thread(target=reader)
    thread.start()
    barrier.wait()
    catalog.ingest(DOCUMENTS[6])
    thread.join()
    after = catalog.query(query, trace=PlanTrace())
    assert not errors, errors
    allowed = {tuple(before), tuple(after)}
    assert set(observed) <= allowed, set(observed) - allowed


# ----------------------------------------------------------------------
# Randomized interleavings vs a serial oracle
# ----------------------------------------------------------------------

operations = st.lists(
    st.one_of(
        st.tuples(st.just("ingest"), st.integers(min_value=0, max_value=23)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("query"), st.integers(min_value=0, max_value=3)),
    ),
    min_size=1, max_size=12,
)


@given(ops=operations)
@settings(max_examples=25, deadline=None)
def test_interleaved_reads_match_serial_oracle(ops):
    """Property: running the write script on one thread while readers
    continuously query yields final answers identical to replaying the
    same script serially — and the result cache never desynchronizes
    from the store."""
    catalog = build_catalog("memory")
    oracle = build_catalog("memory")
    for cat in (catalog, oracle):
        cat.ingest_many(DOCUMENTS[:4])
    stop = threading.Event()
    errors = []

    def reader():
        try:
            while not stop.is_set():
                for query in QUERIES:
                    catalog.fetch(catalog.query(query))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for op, arg in ops:
            if op == "ingest":
                catalog.ingest(DOCUMENTS[arg])
                oracle.ingest(DOCUMENTS[arg])
            elif op == "delete":
                present = oracle.query(
                    ObjectQuery().add_attribute(AttributeCriteria("theme")))
                if present:
                    victim = present[arg % len(present)]
                    catalog.delete(victim)
                    oracle.delete(victim)
            else:
                catalog.query(QUERIES[arg])
    finally:
        stop.set()
        thread.join()
    assert not errors, errors
    for query in QUERIES:
        serial = oracle.query(query)
        assert catalog.query(query) == serial            # cached path
        assert catalog.query(query, trace=PlanTrace()) == serial  # fresh
    assert check_catalog(catalog) == []
