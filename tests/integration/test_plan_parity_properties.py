"""Property: both executors of the logical plan IR agree, and the
optimizer never changes results.

Hypothesis draws random attribute queries (keyword lookups, numeric
ranges, nested sub-attribute chains, conjunctions) and checks two
invariants of the plan layer:

* **executor parity** — the memory interpreter and the IR→SQL compiler
  run the *same* :class:`~repro.core.logical.LogicalPlan` object and
  return identical object-id lists (and identical trace stage names,
  so EXPLAIN output is backend-neutral);
* **optimizer neutrality** — the statistics-ordered, cache-served plan
  (``catalog.query``) returns exactly what the unoptimized plan built
  straight from the shredded query (``store.match_objects(shredded)``)
  returns.  Estimates order stages; they must never change the answer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op, PlanTrace, build_plan
from repro.grid import CF_STANDARD_NAMES, CorpusConfig, LeadCorpusGenerator, lead_schema

CONFIG = CorpusConfig(seed=777, themes=2, keys_per_theme=3, dynamic_groups=2,
                      params_per_group=5, dynamic_depth=3)
N_DOCS = 12


def _build(store=None):
    catalog = HybridCatalog(lead_schema(), store=store)
    generator = LeadCorpusGenerator(CONFIG)
    generator.register_definitions(catalog)
    catalog.ingest_many(list(generator.documents(N_DOCS)))
    return catalog


@pytest.fixture(scope="module")
def memory_catalog():
    return _build()


@pytest.fixture(scope="module")
def sqlite_catalog():
    return _build(store=SqliteHybridStore())


ops = st.sampled_from([Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE])

keyword_criteria = st.builds(
    lambda kw, op: AttributeCriteria("theme").add_element("themekey", "", kw, op),
    st.sampled_from(CF_STANDARD_NAMES + ["no_such_keyword"]),
    st.sampled_from([Op.EQ, Op.NE, Op.CONTAINS]),
)

keyword_sets = st.builds(
    lambda kws: AttributeCriteria("theme").add_element(
        "themekey", "", set(kws), Op.IN_SET
    ),
    st.lists(st.sampled_from(CF_STANDARD_NAMES), min_size=1, max_size=4),
)

grid_params = st.sampled_from(["nx", "ny", "nz", "dx", "dy"])

parameter_criteria = st.builds(
    lambda param, value, op: AttributeCriteria("grid", "ARPS").add_element(
        param, "ARPS", value, op
    ),
    grid_params,
    st.one_of(
        st.integers(min_value=-5, max_value=110),
        st.floats(min_value=0.0, max_value=5500.0, allow_nan=False).map(
            lambda f: round(f, 2)
        ),
    ),
    ops,
)


def nested_criteria(depth, threshold):
    top = AttributeCriteria("grid", "ARPS")
    current = top
    for level in range(1, depth + 1):
        sub = AttributeCriteria(f"grid-section-l{level}", "ARPS")
        if level == depth:
            sub.add_element(f"grid-param-l{level}", "ARPS", threshold, Op.GE)
        current.add_attribute(sub)
        current = sub
    return top


nested = st.builds(
    nested_criteria,
    st.integers(min_value=1, max_value=2),
    st.floats(min_value=0.0, max_value=6000.0, allow_nan=False).map(lambda f: round(f, 1)),
)

criteria = st.one_of(keyword_criteria, keyword_sets, parameter_criteria, nested)


def _make_query(crits):
    query = ObjectQuery()
    for crit in crits:
        query.add_attribute(crit)
    return query


queries = st.lists(criteria, min_size=1, max_size=3).map(_make_query)


@settings(max_examples=80, deadline=None)
@given(queries)
def test_interpreter_and_compiler_agree(memory_catalog, sqlite_catalog, query):
    mem_trace, sql_trace = PlanTrace(), PlanTrace()
    mem_ids = memory_catalog.query(query, trace=mem_trace)
    sql_ids = sqlite_catalog.query(query, trace=sql_trace)
    assert mem_ids == sql_ids
    assert [s.name for s in mem_trace.stages] == [s.name for s in sql_trace.stages]


@settings(max_examples=80, deadline=None)
@given(queries)
def test_optimizer_preserves_results(memory_catalog, sqlite_catalog, query):
    for catalog in (memory_catalog, sqlite_catalog):
        shredded = catalog.shred_query(query)
        unoptimized = catalog.store.match_objects(shredded)
        optimized = catalog.query(query)
        assert optimized == unoptimized


@settings(max_examples=40, deadline=None)
@given(queries)
def test_cached_plan_equals_fresh_plan(memory_catalog, query):
    catalog = memory_catalog
    shredded = catalog.shred_query(query)
    fresh = catalog.store.match_objects(build_plan(shredded, catalog.stats))
    plan, _hit = catalog.plan_for(shredded)  # may come from the cache
    assert catalog.store.match_objects(plan) == fresh
