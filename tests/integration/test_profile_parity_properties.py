"""Property: query execution *profiles* are backend-neutral.

PR 3's PAR01 property says the memory interpreter and the IR→SQL
compiler return the same object ids from the same plan; PR 6 extends
that to ``EXPLAIN ANALYZE``: a :class:`~repro.obs.profile.QueryProfile`
collected on either backend must report the same stage names, the same
stage order, and the same per-stage rows-out — only the timings (and
the wait breakdown) may differ.  Hypothesis draws the same random
query shapes the PAR01 suite uses and profiles both backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.grid import CF_STANDARD_NAMES, CorpusConfig, LeadCorpusGenerator, lead_schema
from repro.obs import QueryProfile, collecting

CONFIG = CorpusConfig(seed=777, themes=2, keys_per_theme=3, dynamic_groups=2,
                      params_per_group=5, dynamic_depth=3)
N_DOCS = 12


def _build(store=None):
    catalog = HybridCatalog(lead_schema(), store=store)
    generator = LeadCorpusGenerator(CONFIG)
    generator.register_definitions(catalog)
    catalog.ingest_many(list(generator.documents(N_DOCS)))
    return catalog


@pytest.fixture(scope="module")
def memory_catalog():
    return _build()


@pytest.fixture(scope="module")
def sqlite_catalog():
    return _build(store=SqliteHybridStore())


ops = st.sampled_from([Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE])

keyword_criteria = st.builds(
    lambda kw, op: AttributeCriteria("theme").add_element("themekey", "", kw, op),
    st.sampled_from(CF_STANDARD_NAMES + ["no_such_keyword"]),
    st.sampled_from([Op.EQ, Op.NE, Op.CONTAINS]),
)

grid_params = st.sampled_from(["nx", "ny", "nz", "dx", "dy"])

parameter_criteria = st.builds(
    lambda param, value, op: AttributeCriteria("grid", "ARPS").add_element(
        param, "ARPS", value, op
    ),
    grid_params,
    st.integers(min_value=-5, max_value=110),
    ops,
)


def nested_criteria(depth, threshold):
    top = AttributeCriteria("grid", "ARPS")
    current = top
    for level in range(1, depth + 1):
        sub = AttributeCriteria(f"grid-section-l{level}", "ARPS")
        if level == depth:
            sub.add_element(f"grid-param-l{level}", "ARPS", threshold, Op.GE)
        current.add_attribute(sub)
        current = sub
    return top


nested = st.builds(
    nested_criteria,
    st.integers(min_value=1, max_value=2),
    st.floats(min_value=0.0, max_value=6000.0, allow_nan=False).map(
        lambda f: round(f, 1)
    ),
)

criteria = st.one_of(keyword_criteria, parameter_criteria, nested)


def _make_query(crits):
    query = ObjectQuery()
    for crit in crits:
        query.add_attribute(crit)
    return query


queries = st.lists(criteria, min_size=1, max_size=3).map(_make_query)


def _profiled(catalog, query):
    """Run ``query`` uncached (fresh shred each call) and return the
    collected profile."""
    shredded = catalog.shred_query(query)
    plan, _hit = catalog.plan_for(shredded)
    profile = QueryProfile()
    with collecting(profile):
        ids = catalog.store.match_objects(plan)
    return ids, profile


@settings(max_examples=80, deadline=None)
@given(queries)
def test_profiles_agree_across_backends(memory_catalog, sqlite_catalog, query):
    mem_ids, mem = _profiled(memory_catalog, query)
    sql_ids, sql = _profiled(sqlite_catalog, query)
    assert mem_ids == sql_ids
    assert mem.backend == "memory" and sql.backend == "sqlite"
    # The parity property proper: names, order, and row flow match.
    assert mem.stage_names() == sql.stage_names()
    assert mem.rows_out() == sql.rows_out()
    assert [s.rows_in for s in mem.stages] == [s.rows_in for s in sql.stages]
    assert [s.key for s in mem.stages] == [s.key for s in sql.stages]
    assert mem.short_circuited == sql.short_circuited
    assert mem.simple == sql.simple


@settings(max_examples=40, deadline=None)
@given(queries)
def test_profile_timing_columns_are_per_stage(memory_catalog, query):
    _ids, profile = _profiled(memory_catalog, query)
    assert len(profile.stages) >= 2  # at least one seek + intersect
    assert all(stage.seconds >= 0.0 for stage in profile.stages)
    # Every executed stage key carries a timing entry.
    timed = set(profile.stage_seconds)
    assert {stage.key for stage in profile.stages} >= timed


@settings(max_examples=40, deadline=None)
@given(queries)
def test_estimates_attached_where_planner_has_them(memory_catalog, query):
    _ids, profile = _profiled(memory_catalog, query)
    for stage in profile.stages:
        if stage.kind in ("ElementSeek", "DirectCountMatch", "ObjectIntersect"):
            assert stage.est_rows is not None
            assert stage.est_delta() == stage.rows_out - stage.est_rows
        else:  # containment edges carry no optimizer estimate
            assert stage.est_rows is None
