"""Property: the Fig-4 planner agrees with the per-document scan oracle.

Hypothesis draws random attribute queries (keyword lookups, numeric
ranges, nested sub-attribute chains, conjunctions) and checks that the
count-matching plan returns exactly the objects the independent
nested-loop oracle accepts — on both the memory and sqlite backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import evaluate_shredded_query
from repro.backends import SqliteHybridStore
from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op, shred_query
from repro.grid import CF_STANDARD_NAMES, CorpusConfig, LeadCorpusGenerator, lead_schema
from repro.xmlkit import parse

CONFIG = CorpusConfig(seed=4242, themes=2, keys_per_theme=3, dynamic_groups=2,
                      params_per_group=5, dynamic_depth=3)
N_DOCS = 12


def _build(store=None):
    catalog = HybridCatalog(lead_schema(), store=store)
    generator = LeadCorpusGenerator(CONFIG)
    generator.register_definitions(catalog)
    documents = list(generator.documents(N_DOCS))
    catalog.ingest_many(documents)
    return catalog, documents


@pytest.fixture(scope="module")
def memory_env():
    return _build()


@pytest.fixture(scope="module")
def sqlite_env():
    return _build(store=SqliteHybridStore())


@pytest.fixture(scope="module")
def shreds(memory_env):
    catalog, documents = memory_env
    return [catalog.shredder.shred(parse(doc)) for doc in documents]


ops = st.sampled_from([Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE])

keyword_criteria = st.builds(
    lambda kw, op: AttributeCriteria("theme").add_element(
        "themekey", "", kw, op if op in (Op.EQ, Op.NE, Op.CONTAINS) else Op.EQ
    ),
    st.sampled_from(CF_STANDARD_NAMES + ["no_such_keyword"]),
    st.sampled_from([Op.EQ, Op.NE, Op.CONTAINS]),
)

# ARPS grid group parameters the generator emits with params_per_group=5.
grid_params = st.sampled_from(["nx", "ny", "nz", "dx", "dy"])

parameter_criteria = st.builds(
    lambda param, value, op: AttributeCriteria("grid", "ARPS").add_element(
        param, "ARPS", value, op
    ),
    grid_params,
    st.one_of(
        st.integers(min_value=-5, max_value=110),
        st.floats(min_value=0.0, max_value=5500.0, allow_nan=False).map(
            lambda f: round(f, 2)
        ),
    ),
    ops,
)


def nested_criteria(depth, threshold):
    top = AttributeCriteria("grid", "ARPS")
    current = top
    for level in range(1, depth + 1):
        sub = AttributeCriteria(f"grid-section-l{level}", "ARPS")
        if level == depth:
            sub.add_element(f"grid-param-l{level}", "ARPS", threshold, Op.GE)
        current.add_attribute(sub)
        current = sub
    return top


nested = st.builds(
    nested_criteria,
    st.integers(min_value=1, max_value=2),
    st.floats(min_value=0.0, max_value=6000.0, allow_nan=False).map(lambda f: round(f, 1)),
)

criteria = st.one_of(keyword_criteria, parameter_criteria, nested)

queries = st.lists(criteria, min_size=1, max_size=3).map(
    lambda crits: _make_query(crits)
)


def _make_query(crits):
    query = ObjectQuery()
    for crit in crits:
        query.add_attribute(crit)
    return query


@settings(max_examples=120, deadline=None)
@given(queries)
def test_planner_matches_oracle(memory_env, shreds, query):
    catalog, _documents = memory_env
    shredded = shred_query(query, catalog.registry)
    expected = [
        i + 1
        for i, shred in enumerate(shreds)
        if evaluate_shredded_query(shredded, shred)
    ]
    assert catalog.query(query) == expected


@settings(max_examples=60, deadline=None)
@given(queries)
def test_sqlite_matches_memory(memory_env, sqlite_env, query):
    memory, _ = memory_env
    sqlite, _ = sqlite_env
    assert memory.query(query) == sqlite.query(query)


@settings(max_examples=120, deadline=None)
@given(queries)
def test_batch_interpreter_matches_rows_interpreter(memory_env, query):
    # The columnar interpreter and the retained row-at-a-time reference
    # must agree on every query shape — the refactor's safety net.
    from repro.core.planner import match_objects_memory, match_objects_memory_rows

    catalog, _documents = memory_env
    shredded = shred_query(query, catalog.registry)
    batch_ids = match_objects_memory(catalog.store, shredded)
    row_ids = match_objects_memory_rows(catalog.store, shredded)
    assert batch_ids == row_ids
