"""Properties over *randomly generated annotated schemas*.

The LEAD schema exercises one fixed shape; these tests let hypothesis
build arbitrary valid annotated schemas (structural nesting, leaf and
interior attributes, sub-attribute trees, repeatable nodes, all value
types), then check the architecture's core guarantees on each:

* the annotated-XSD interchange form round-trips node-for-node;
* generated conforming documents survive ingest → fetch canonically;
* the Fig-4 planner agrees with the scan oracle for random criteria.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import evaluate_shredded_query
from repro.core import (
    AnnotatedSchema,
    AttributeCriteria,
    HybridCatalog,
    NodeKind,
    ObjectQuery,
    Op,
    ValueType,
    attribute,
    melement,
    shred_query,
    structural,
    sub_attribute,
)
from repro.core.xsd import load_xsd, schema_to_xsd
from repro.xmlkit import Element, canonical, parse

VALUE_TYPES = [ValueType.STRING, ValueType.INTEGER, ValueType.FLOAT, ValueType.DATE]


@st.composite
def annotated_schemas(draw):
    """A random valid annotated schema with unique tags."""
    counter = [0]

    def tag() -> str:
        counter[0] += 1
        return f"t{counter[0]}"

    def build_element():
        return melement(
            tag(),
            value_type=draw(st.sampled_from(VALUE_TYPES)),
            repeatable=draw(st.booleans()),
        )

    def build_attribute_children(depth: int):
        children = [build_element() for _ in range(draw(st.integers(1, 3)))]
        if depth > 0 and draw(st.booleans()):
            children.append(
                sub_attribute(tag(), *build_attribute_children(depth - 1))
            )
        return children

    def build_attribute():
        if draw(st.booleans()):
            return attribute(
                tag(),
                *build_attribute_children(draw(st.integers(0, 2))),
                repeatable=draw(st.booleans()),
                queryable=draw(st.booleans()),
            )
        # Leaf attribute.
        return attribute(
            tag(),
            repeatable=draw(st.booleans()),
            value_type=draw(st.sampled_from(VALUE_TYPES)),
        )

    def build_structural(depth: int):
        children = []
        for _ in range(draw(st.integers(1, 3))):
            if depth > 0 and draw(st.integers(0, 2)) == 0:
                children.append(build_structural(depth - 1))
            else:
                children.append(build_attribute())
        return structural(tag(), *children)

    return AnnotatedSchema(build_structural(draw(st.integers(0, 2))), name="random")


def _value_for(value_type: ValueType, rng: random.Random) -> str:
    if value_type is ValueType.INTEGER:
        return str(rng.randint(-50, 50))
    if value_type is ValueType.FLOAT:
        return str(round(rng.uniform(-100.0, 100.0), 3))
    if value_type is ValueType.DATE:
        return f"{rng.randint(2000, 2006):04d}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
    return rng.choice(["alpha", "beta", "gamma", "delta kappa", "x<y&z"])


def generate_document(schema: AnnotatedSchema, seed: int) -> Element:
    """A random document conforming to ``schema`` (every node present,
    repeatables 1-2 instances, typed values)."""
    rng = random.Random(seed)

    def build(node) -> Element:
        out = Element(node.tag)
        if node.kind is NodeKind.ELEMENT or (
            node.kind is NodeKind.ATTRIBUTE and node.is_element
        ):
            out.append(_value_for(node.value_type, rng))
            return out
        for child in node.children:
            instances = 1 + (rng.random() < 0.5 if child.repeatable else 0)
            for _ in range(int(instances)):
                out.append(build(child))
        return out

    return build(schema.root)


@settings(max_examples=40, deadline=None)
@given(annotated_schemas())
def test_xsd_interchange_roundtrips(schema):
    reloaded = load_xsd(schema_to_xsd(schema), name="random")

    def flatten(s):
        return [
            (n.path(), n.kind.value, n.order, n.last_child_order,
             n.repeatable, n.required, n.queryable, n.value_type.value)
            for n in s.iter_nodes()
        ]

    assert flatten(reloaded) == flatten(schema)


@settings(max_examples=30, deadline=None)
@given(annotated_schemas(), st.integers(0, 1000))
def test_documents_roundtrip_on_random_schemas(schema, seed):
    catalog = HybridCatalog(schema)
    document = generate_document(schema, seed)
    receipt = catalog.ingest(document.to_xml())
    assert receipt.warnings == []
    response = catalog.fetch([receipt.object_id])[receipt.object_id]
    assert canonical(parse(response)) == canonical(document)


@settings(max_examples=30, deadline=None)
@given(annotated_schemas(), st.integers(0, 1000), st.integers(0, 1000))
def test_planner_matches_oracle_on_random_schemas(schema, doc_seed, query_seed):
    catalog = HybridCatalog(schema)
    documents = [generate_document(schema, doc_seed + i) for i in range(4)]
    for document in documents:
        catalog.ingest(document.to_xml())

    rng = random.Random(query_seed)
    queryable = [n for n in schema.attributes() if n.queryable]
    if not queryable:
        return
    target = rng.choice(queryable)
    criteria = AttributeCriteria(target.tag)
    elements = [c for c in target.children if c.kind is NodeKind.ELEMENT]
    if target.is_element:
        criteria.add_element(target.tag, "", _value_for(target.value_type, rng))
    elif elements:
        chosen = rng.choice(elements)
        op = rng.choice([Op.EQ, Op.NE, Op.LE, Op.GE])
        criteria.add_element(chosen.tag, "", _value_for(chosen.value_type, rng), op)
    query = ObjectQuery().add_attribute(criteria)

    shredded = shred_query(query, catalog.registry)
    expected = [
        i + 1
        for i, document in enumerate(documents)
        if evaluate_shredded_query(
            shredded, catalog.shredder.shred(parse(document.to_xml()))
        )
    ]
    assert catalog.query(query) == expected
