"""Robustness: escaping, unicode, large documents, adversarial values.

Metadata values flow through many layers (parser → shredder → store →
query comparison → CLOB splice → reparse); these tests push values that
break naive implementations through the whole pipeline.
"""

import pytest

from repro.backends import SqliteHybridStore
from repro.core import (
    AnnotatedSchema,
    AttributeCriteria,
    HybridCatalog,
    ObjectQuery,
    Op,
    attribute,
    melement,
    structural,
)
from repro.xmlkit import canonical, element, escape_text, parse, pretty_print

NASTY_VALUES = [
    "x < y & z > w",
    'quotes "double" and \'single\'',
    "unicode: ☃ ℃ – µm",
    "  leading and trailing  ",
    "tags <not-a-tag/> inside",
    "&amp; pre-escaped-looking",
    "newlines\nand\ttabs",
]


def simple_schema():
    return AnnotatedSchema(
        structural(
            "root",
            attribute("item", melement("value"), repeatable=True),
        )
    )


def doc_with_values(values):
    root = element("root")
    for value in values:
        root.append(element("item", element("value", value)))
    return root.to_xml()


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request):
    store = SqliteHybridStore() if request.param == "sqlite" else None
    return HybridCatalog(simple_schema(), store=store)


class TestAdversarialValues:
    def test_roundtrip(self, catalog):
        text = doc_with_values(NASTY_VALUES)
        receipt = catalog.ingest(text)
        response = catalog.fetch([receipt.object_id])[receipt.object_id]
        assert canonical(parse(response)) == canonical(parse(text))

    @pytest.mark.parametrize("value", NASTY_VALUES)
    def test_queryable_by_exact_value(self, catalog, value):
        catalog.ingest(doc_with_values(NASTY_VALUES))
        query = ObjectQuery().add_attribute(
            AttributeCriteria("item").add_element("value", "", value.strip())
        )
        assert catalog.query(query) == [1]

    def test_contains_across_escaped_chars(self, catalog):
        catalog.ingest(doc_with_values(NASTY_VALUES))
        query = ObjectQuery().add_attribute(
            AttributeCriteria("item").add_element("value", "", "y & z", Op.CONTAINS)
        )
        assert catalog.query(query) == [1]

    def test_angle_brackets_do_not_break_clobs(self, catalog):
        catalog.ingest(doc_with_values(["a <b> c"]))
        response = catalog.fetch([1])[1]
        reparsed = parse(response)
        item = reparsed.root.find("item")
        assert item.find("value").text() == "a <b> c"

    def test_sql_injection_shaped_values(self, catalog):
        evil = "'; DROP TABLE clobs; --"
        catalog.ingest(doc_with_values([evil]))
        query = ObjectQuery().add_attribute(
            AttributeCriteria("item").add_element("value", "", evil)
        )
        assert catalog.query(query) == [1]
        # The store survived.
        assert catalog.fetch([1])


class TestLargeDocuments:
    def test_many_instances(self, catalog):
        values = [f"value-{i:05d}" for i in range(500)]
        receipt = catalog.ingest(doc_with_values(values))
        assert receipt.clob_count == 500
        query = ObjectQuery().add_attribute(
            AttributeCriteria("item").add_element("value", "", "value-00499")
        )
        assert catalog.query(query) == [1]
        response = catalog.fetch([1])[1]
        assert response.count("<item>") == 500
        # Instance order is preserved end to end.
        assert response.index("value-00000") < response.index("value-00499")

    def test_long_values(self, catalog):
        long_value = "x" * 50_000
        catalog.ingest(doc_with_values([long_value]))
        response = catalog.fetch([1])[1]
        assert long_value in response


class TestEscapingHelpers:
    def test_escape_text_roundtrip_via_document(self):
        for value in NASTY_VALUES:
            fragment = f"<v>{escape_text(value)}</v>"
            assert parse(fragment).root.text() == value
