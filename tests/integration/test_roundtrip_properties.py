"""Property: any generated corpus round-trips through the hybrid store.

Hypothesis drives the corpus configuration (theme counts, dynamic
nesting depth, parameter counts); for every generated document the
rebuilt response must be canonically equal to the input — the Fig-1
guarantee that dual storage loses nothing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HybridCatalog
from repro.grid import CorpusConfig, LeadCorpusGenerator, lead_schema
from repro.xmlkit import canonical, parse

configs = st.builds(
    CorpusConfig,
    seed=st.integers(min_value=0, max_value=10_000),
    themes=st.integers(min_value=0, max_value=3),
    places=st.integers(min_value=0, max_value=2),
    keys_per_theme=st.integers(min_value=1, max_value=4),
    dynamic_groups=st.integers(min_value=0, max_value=3),
    params_per_group=st.integers(min_value=1, max_value=6),
    dynamic_depth=st.integers(min_value=1, max_value=4),
    models=st.sampled_from([("ARPS",), ("WRF",), ("ARPS", "WRF")]),
)


@settings(max_examples=25, deadline=None)
@given(configs, st.integers(min_value=0, max_value=50))
def test_generated_documents_roundtrip(config, index):
    generator = LeadCorpusGenerator(config)
    catalog = HybridCatalog(lead_schema())
    generator.register_definitions(catalog)
    document = generator.document(index)
    receipt = catalog.ingest(document)
    assert receipt.warnings == []
    response = catalog.fetch([receipt.object_id])[receipt.object_id]
    assert canonical(parse(response)) == canonical(parse(document))


@settings(max_examples=15, deadline=None)
@given(configs)
def test_ingest_delete_ingest_is_clean(config):
    generator = LeadCorpusGenerator(config)
    catalog = HybridCatalog(lead_schema())
    generator.register_definitions(catalog)
    document = generator.document(0)
    first = catalog.ingest(document)
    catalog.delete(first.object_id)
    assert len(catalog) == 0
    second = catalog.ingest(document)
    response = catalog.fetch([second.object_id])[second.object_id]
    assert canonical(parse(response)) == canonical(parse(document))


@settings(max_examples=15, deadline=None)
@given(configs, st.integers(min_value=0, max_value=20))
def test_shredding_is_deterministic(config, index):
    generator = LeadCorpusGenerator(config)

    def shred_rows():
        catalog = HybridCatalog(lead_schema())
        generator.register_definitions(catalog)
        result = catalog.shredder.shred(parse(generator.document(index)))
        return (
            [(c.schema_order, c.clob_seq, c.text) for c in result.clobs],
            [(a.attr_id, a.seq_id) for a in result.attributes],
            [(e.attr_id, e.seq_id, e.elem_id, e.elem_seq, e.value_text) for e in result.elements],
            [(i.desc_attr_id, i.desc_seq, i.anc_attr_id, i.anc_seq, i.distance) for i in result.inverted],
        )

    assert shred_rows() == shred_rows()
