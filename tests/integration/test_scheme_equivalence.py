"""Integration: all four storage schemes answer identically.

The hybrid catalog, inlining, edge-table, and CLOB baselines share one
generated corpus and one definition registry; every workload query must
return the same object ids from each, and every scheme's reconstruction
must be canonically equal to the ingested document.
"""

import pytest

from repro.baselines import ClobCatalog, EdgeCatalog, HybridScheme, InliningCatalog
from repro.core import HybridCatalog
from repro.grid import LeadCorpusGenerator, WorkloadGenerator, lead_schema
from repro.xmlkit import canonical, parse


@pytest.fixture(scope="module")
def schemes(corpus_config, corpus_docs):
    catalog = HybridCatalog(lead_schema())
    LeadCorpusGenerator(corpus_config).register_definitions(catalog)
    built = {
        "hybrid": HybridScheme(catalog),
        "inlining": InliningCatalog(lead_schema(), registry=catalog.registry),
        "edge": EdgeCatalog(lead_schema(), registry=catalog.registry),
        "clob": ClobCatalog(lead_schema(), registry=catalog.registry),
    }
    for scheme in built.values():
        scheme.ingest_many(corpus_docs)
    return built


class TestQueryEquivalence:
    def test_mixed_workload(self, schemes, corpus_config):
        workload = WorkloadGenerator(corpus_config)
        for i, query in enumerate(workload.mixed(24)):
            expected = schemes["hybrid"].query(query)
            for name in ("inlining", "edge", "clob"):
                assert schemes[name].query(query) == expected, f"query {i} on {name}"

    def test_planted_markers(self, schemes, corpus_config):
        workload = WorkloadGenerator(corpus_config)
        for marker in corpus_config.planted:
            query = workload.marker_query(marker)
            expected = schemes["hybrid"].query(query)
            assert len(expected) == len(
                [i for i in range(24) if marker.applies_to(i)]
            )
            for name in ("inlining", "edge", "clob"):
                assert schemes[name].query(query) == expected, name

    def test_in_set_criteria(self, schemes):
        """Ontology-style IN_SET criteria agree across all schemes, for
        both string and numeric element types."""
        from repro.core import AttributeCriteria, ObjectQuery, Op
        from repro.grid import CF_STANDARD_NAMES

        string_query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element(
                "themekey", "", frozenset(CF_STANDARD_NAMES[:8]), Op.IN_SET
            )
        )
        numeric_query = ObjectQuery().add_attribute(
            AttributeCriteria("grid", "ARPS").add_element(
                "nx", "ARPS", [i for i in range(0, 101, 5)], Op.IN_SET
            )
        )
        for query in (string_query, numeric_query):
            expected = schemes["hybrid"].query(query)
            for name in ("inlining", "edge", "clob"):
                assert schemes[name].query(query) == expected, name

    def test_nested_depths(self, schemes, corpus_config):
        workload = WorkloadGenerator(corpus_config)
        for depth in range(1, corpus_config.dynamic_depth):
            for i in range(4):
                query = workload.nested_query(i, depth=depth)
                expected = schemes["hybrid"].query(query)
                for name in ("inlining", "edge", "clob"):
                    assert schemes[name].query(query) == expected, (depth, i, name)


class TestReconstructionEquivalence:
    def test_every_scheme_roundtrips(self, schemes, corpus_docs):
        sample_ids = [1, 8, 17, 24]
        for name, scheme in schemes.items():
            responses = scheme.fetch(sample_ids)
            for oid in sample_ids:
                expected = canonical(parse(corpus_docs[oid - 1]))
                actual = canonical(parse(responses[oid]))
                assert actual == expected, f"{name} object {oid}"


class TestStorageShape:
    def test_hybrid_pays_dual_storage(self, schemes):
        """E5's expected shape: the hybrid stores both CLOBs and rows,
        so its footprint exceeds the single-representation schemes."""
        hybrid = schemes["hybrid"].total_bytes()
        assert hybrid > schemes["clob"].total_bytes()
        assert hybrid > schemes["inlining"].total_bytes()

    def test_clob_scheme_has_one_row_per_document(self, schemes, corpus_docs):
        assert schemes["clob"].total_rows() == len(corpus_docs)
