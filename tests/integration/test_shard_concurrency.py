"""Concurrent federation: readers scatter-gather while a writer
mutates one shard.

Extends the PR 5 concurrency contract to the sharded path:

* **stress** — reader threads run federated queries + fetches while
  the main thread ingests and deletes (each write touching exactly
  one shard); readers never crash, never see an id they cannot fetch,
  and the federation passes fsck afterwards;
* **shard-scoped invalidation** — while a writer hammers ONE shard,
  the untouched shards keep serving warm result-cache hits (their
  stats tokens never move), which is the whole point of per-shard
  caches over one federation-wide cache;
* **equivalence** — randomized interleavings of writes and federated
  reads end in exactly the state a serial unsharded oracle reaches.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op, PlanTrace
from repro.grid import CF_STANDARD_NAMES, CorpusConfig, LeadCorpusGenerator, lead_schema
from repro.obs import MetricsRegistry
from repro.sharding import ShardedCatalog, check_sharded_catalog

CONFIG = CorpusConfig(seed=7272, themes=2, keys_per_theme=3, dynamic_groups=2,
                      params_per_group=4, dynamic_depth=2)
GENERATOR = LeadCorpusGenerator(CONFIG)
DOCUMENTS = list(GENERATOR.documents(30))
SHARDS = 3


def build_sharded(ingest=0):
    catalog = ShardedCatalog(lead_schema(), shards=SHARDS, metrics=MetricsRegistry())
    GENERATOR.register_definitions(catalog)
    catalog.ingest_many(DOCUMENTS[:ingest])
    return catalog


def build_oracle(ingest=0):
    catalog = HybridCatalog(lead_schema(), metrics=MetricsRegistry())
    GENERATOR.register_definitions(catalog)
    catalog.ingest_many(DOCUMENTS[:ingest])
    return catalog


def theme_query(keyword):
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", keyword, Op.CONTAINS)
    )


QUERIES = [theme_query(kw) for kw in CF_STANDARD_NAMES[:4]]
ALL_THEMES = ObjectQuery().add_attribute(AttributeCriteria("theme"))


def test_readers_survive_writes_to_one_shard():
    """Federated readers race ingests and deletes; no reader crashes,
    no torn row set, fsck-clean afterwards."""
    catalog = build_sharded(ingest=9)
    errors = []
    stop = threading.Event()

    def reader(query):
        try:
            while not stop.is_set():
                ids = catalog.query(query)
                responses = catalog.fetch(ids)
                assert set(responses) <= set(ids)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
            stop.set()

    threads = [threading.Thread(target=reader, args=(q,)) for q in QUERIES * 2]
    for t in threads:
        t.start()
    try:
        for doc in DOCUMENTS[9:21]:
            catalog.ingest(doc)
        for object_id in catalog.query(ALL_THEMES)[:4]:
            catalog.delete(object_id)
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert not errors, errors
    assert check_sharded_catalog(catalog, deep=True) == []


def test_untouched_shards_keep_serving_warm_hits_under_write_load():
    """The shard-scoped invalidation property, under concurrency: a
    writer repeatedly mutating ONE shard never moves the other
    shards' stats tokens, so their legs of every concurrent federated
    query stay result-cache hits."""
    catalog = build_sharded(ingest=12)
    # All writes below go to the shard owning this victim object, via
    # add/remove cycles that never change which shard anything lives on.
    victim = catalog.query(ALL_THEMES)[0]
    hot_shard = catalog.shard_of(victim)
    cold_shards = [i for i in range(SHARDS) if i != hot_shard]
    for query in QUERIES:
        catalog.query(query)  # prime every per-shard cache

    tokens_before = {i: catalog.cache_token()[i] for i in cold_shards}
    errors = []
    stop = threading.Event()
    expected = {id(q): catalog.query(q) for q in QUERIES}

    def reader(query):
        try:
            while not stop.is_set():
                assert catalog.query(query) == expected[id(query)]
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
            stop.set()

    threads = [threading.Thread(target=reader, args=(q,)) for q in QUERIES]
    for t in threads:
        t.start()
    try:
        for _ in range(6):
            receipt = catalog.add_attribute(
                victim, "<theme><themekey>transient</themekey></theme>"
            )
            assert receipt.object_id == victim
            catalog.remove_attribute(
                victim, "theme", seq=_theme_count(catalog, victim)
            )
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert not errors, errors
    # The cold shards' tokens never moved ...
    for index in cold_shards:
        assert catalog.cache_token()[index] == tokens_before[index], (
            f"shard {index} was invalidated by writes to shard {hot_shard}"
        )
    # ... and their cached legs still serve hits.
    hits = catalog.metrics.counter(
        "query_cache_hits_total",
        "query results served from the result cache",
    ).value
    catalog.query(QUERIES[0])
    assert catalog.metrics.counter(
        "query_cache_hits_total",
        "query results served from the result cache",
    ).value >= hits + len(cold_shards)
    assert check_sharded_catalog(catalog, deep=True) == []


def _theme_count(catalog, object_id):
    """The current number of top-level theme instances on the object
    (the remove path deletes the seq-th instance)."""
    shard = catalog.shards[catalog.shard_of(object_id)]
    attr_def = catalog.registry.lookup_attribute("theme", "")
    return shard.store.instance_counts(object_id).get(attr_def.attr_id, 1)


def test_concurrent_federated_reads_equal_serial_oracle():
    catalog = build_sharded(ingest=12)
    oracle = build_oracle(ingest=12)
    for query in QUERIES:
        expected = oracle.query(query)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(lambda q: catalog.query(q), [query] * 8))
        assert all(result == expected for result in results)
        assert catalog.query(query, trace=PlanTrace()) == expected


operations = st.lists(
    st.one_of(
        st.tuples(st.just("ingest"), st.integers(min_value=0, max_value=29)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("query"), st.integers(min_value=0, max_value=3)),
    ),
    min_size=1, max_size=10,
)


@given(ops=operations)
@settings(max_examples=15, deadline=None)
def test_interleaved_federated_reads_match_serial_oracle(ops):
    """Property: a write script applied to the federation while
    readers continuously scatter-gather ends in the same observable
    state as replaying it serially on one unsharded catalog."""
    catalog = build_sharded(ingest=4)
    oracle = build_oracle(ingest=4)
    stop = threading.Event()
    errors = []

    def reader():
        try:
            while not stop.is_set():
                for query in QUERIES:
                    catalog.fetch(catalog.query(query))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for op, arg in ops:
            if op == "ingest":
                catalog.ingest(DOCUMENTS[arg])
                oracle.ingest(DOCUMENTS[arg])
            elif op == "delete":
                present = oracle.query(ALL_THEMES)
                if present:
                    victim = present[arg % len(present)]
                    catalog.delete(victim)
                    oracle.delete(victim)
            else:
                catalog.query(QUERIES[arg])
    finally:
        stop.set()
        thread.join()
    assert not errors, errors
    for query in QUERIES:
        serial = oracle.query(query)
        assert catalog.query(query) == serial
        assert catalog.query(query, trace=PlanTrace()) == serial
    assert check_sharded_catalog(catalog) == []


def test_closing_mid_read_storm_raises_cleanly():
    """Closing the federation while readers are in flight: every
    reader either completes its query or gets CatalogClosedError —
    never a partial result or a backend-level crash."""
    from repro.errors import CatalogClosedError

    catalog = build_sharded(ingest=9)
    barrier = threading.Barrier(5)
    outcomes = []

    def reader():
        barrier.wait()
        try:
            for _ in range(200):
                ids = catalog.query(QUERIES[0], trace=PlanTrace())
                outcomes.append(("ok", tuple(ids)))
        except CatalogClosedError:
            outcomes.append(("closed", None))
        except Exception as exc:  # pragma: no cover - failure path
            outcomes.append(("error", exc))

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    barrier.wait()
    catalog.close()
    for t in threads:
        t.join()
    assert all(kind in ("ok", "closed") for kind, _payload in outcomes), outcomes
    answers = {payload for kind, payload in outcomes if kind == "ok"}
    assert len(answers) <= 1  # every successful read saw the same ids
