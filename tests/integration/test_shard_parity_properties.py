"""The sharding parity suite: ShardedCatalog(N) == one catalog.

Hypothesis draws random query shapes (keyword lookups, numeric range
predicates over grid parameters, nested sub-attribute chains, and
conjunctions of all three) and asserts that a catalog partitioned
across N ∈ {1, 2, 3, 5} shards is observationally identical to one
unsharded catalog holding the same corpus:

* **query** — the globally merged id list is equal (same members,
  same order),
* **fetch** — the set-wise tagged-XML responses are byte-identical,
* **explain** — the federated plan executes the same stage keys, and
  the summed ObjectIntersect actuals equal the unsharded actuals
  (objects are disjoint across shards, so the final stage sums
  exactly),
* **accounting** — per-table row counts sum to the unsharded counts,
  and every sharded catalog passes the federation fsck.

All five catalogs ingest the identical generated corpus in the same
order; the sharded facade allocates the same global ids the unsharded
catalog does, which is what makes id-level comparison meaningful.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.grid import CF_STANDARD_NAMES, CorpusConfig, LeadCorpusGenerator, lead_schema
from repro.obs import MetricsRegistry
from repro.sharding import ShardedCatalog, check_sharded_catalog

CONFIG = CorpusConfig(seed=20060815, themes=2, keys_per_theme=3,
                      dynamic_groups=2, params_per_group=5, dynamic_depth=3)
N_DOCS = 14
SHARD_COUNTS = (1, 2, 3, 5)


def _ingest_corpus(catalog):
    generator = LeadCorpusGenerator(CONFIG)
    generator.register_definitions(catalog)
    for index, document in enumerate(generator.documents(N_DOCS)):
        catalog.ingest(document, name=f"doc-{index}", owner=f"user{index % 3}")
    return catalog


@pytest.fixture(scope="module")
def oracle():
    return _ingest_corpus(HybridCatalog(lead_schema(), metrics=MetricsRegistry()))


@pytest.fixture(scope="module")
def sharded():
    return {
        shards: _ingest_corpus(
            ShardedCatalog(lead_schema(), shards=shards, metrics=MetricsRegistry())
        )
        for shards in SHARD_COUNTS
    }


# -- query-shape strategies (the oracle suite's shapes, reseeded) ----------

ops = st.sampled_from([Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE])

keyword_criteria = st.builds(
    lambda kw, op: AttributeCriteria("theme").add_element("themekey", "", kw, op),
    st.sampled_from(CF_STANDARD_NAMES + ["no_such_keyword"]),
    st.sampled_from([Op.EQ, Op.NE, Op.CONTAINS]),
)

parameter_criteria = st.builds(
    lambda param, value, op: AttributeCriteria("grid", "ARPS").add_element(
        param, "ARPS", value, op
    ),
    st.sampled_from(["nx", "ny", "nz", "dx", "dy"]),
    st.one_of(
        st.integers(min_value=-5, max_value=110),
        st.floats(min_value=0.0, max_value=5500.0, allow_nan=False).map(
            lambda f: round(f, 2)
        ),
    ),
    ops,
)


def _nested_criteria(depth, threshold):
    top = AttributeCriteria("grid", "ARPS")
    current = top
    for level in range(1, depth + 1):
        sub = AttributeCriteria(f"grid-section-l{level}", "ARPS")
        if level == depth:
            sub.add_element(f"grid-param-l{level}", "ARPS", threshold, Op.GE)
        current.add_attribute(sub)
        current = sub
    return top


nested = st.builds(
    _nested_criteria,
    st.integers(min_value=1, max_value=2),
    st.floats(min_value=0.0, max_value=6000.0, allow_nan=False).map(
        lambda f: round(f, 1)
    ),
)


def _make_query(crits):
    query = ObjectQuery()
    for crit in crits:
        query.add_attribute(crit)
    return query


queries = st.lists(
    st.one_of(keyword_criteria, parameter_criteria, nested),
    min_size=1, max_size=3,
).map(_make_query)


# -- the parity properties -------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(queries)
def test_sharded_query_matches_unsharded(oracle, sharded, query):
    """Same ids, same global order, for every shard count."""
    expected = oracle.query(query)
    for shards, catalog in sharded.items():
        assert catalog.query(query) == expected, f"shards={shards}"


@settings(max_examples=40, deadline=None)
@given(queries)
def test_sharded_responses_byte_identical(oracle, sharded, query):
    """The aggregated set-wise XML responses equal the unsharded
    builder's output byte for byte (same objects, same CLOB order)."""
    ids = oracle.query(query)
    expected = oracle.fetch(ids)
    for shards, catalog in sharded.items():
        assert catalog.fetch(ids) == expected, f"shards={shards}"
        assert catalog.search(query) == [expected[i] for i in ids]


@settings(max_examples=40, deadline=None)
@given(queries)
def test_sharded_explain_row_totals(oracle, sharded, query):
    """The federated plan runs the same stage keys, and the final
    ObjectIntersect actuals sum exactly to the unsharded actuals.
    (Seek/count stages may legitimately under-count when a shard
    short-circuits on a locally empty criterion, so only the
    intersect stage — whose inputs are disjoint object sets — must
    sum exactly.)"""
    reference = oracle.explain(query)
    intersect_key = reference.plan.intersect.key()
    for shards, catalog in sharded.items():
        explanation = catalog.explain(query)
        assert explanation.object_ids == reference.object_ids
        assert explanation.stage_keys() <= set(reference.plan.actuals), (
            f"shards={shards}: federated legs ran stages the "
            f"unsharded plan does not have"
        )
        merged = explanation.merged_actuals()
        assert merged.get(intersect_key, 0) == reference.plan.actuals.get(
            intersect_key, 0
        ), f"shards={shards}"


def test_storage_rows_sum_to_unsharded(oracle, sharded):
    expected = {
        table: rows for table, rows, _size in oracle.storage_report()
        if table in ("objects", "clobs", "attributes", "elements",
                     "attr_ancestors")
    }
    for shards, catalog in sharded.items():
        summed = {
            table: rows for table, rows, _size in catalog.storage_report()
            if table in expected
        }
        assert summed == expected, f"shards={shards}"


def test_every_sharded_catalog_is_fsck_clean(sharded):
    for shards, catalog in sharded.items():
        assert check_sharded_catalog(catalog, deep=True) == [], f"shards={shards}"


def test_profiled_query_keeps_parity(oracle, sharded):
    """profile=True must not change answers, and the merged profile
    ends with the synthetic ScatterGather stage for N > 1."""
    query = _make_query([
        AttributeCriteria("theme").add_element(
            "themekey", "", CF_STANDARD_NAMES[0], Op.EQ
        )
    ])
    expected = oracle.query(query)
    for shards, catalog in sharded.items():
        assert catalog.query(query, profile=True) == expected
        profile = catalog.last_profile
        assert profile is not None
        if shards > 1:
            assert profile.backend == "sharded"
            assert profile.stage_names()[-1] == "ScatterGather"
