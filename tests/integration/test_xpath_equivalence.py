"""Attribute queries ≡ their XPath translations, corpus-wide.

The §4 correspondence mechanized and verified: every workload query is
translated into XPath (the general-XML form a scientist would have to
write without the catalog) and evaluated per document; the selected
objects must equal the Fig-4 plan's answer exactly.
"""

import pytest

from repro.core import HybridCatalog, Op
from repro.core.translate import query_to_xpath, xpath_matches_document
from repro.errors import QueryError
from repro.grid import (
    CorpusConfig,
    LeadCorpusGenerator,
    WorkloadGenerator,
    lead_schema,
)
from repro.xmlkit import parse

CONFIG = CorpusConfig(seed=606, themes=2, keys_per_theme=3,
                      dynamic_groups=2, params_per_group=5, dynamic_depth=3)
N_DOCS = 15


@pytest.fixture(scope="module")
def env():
    catalog = HybridCatalog(lead_schema())
    generator = LeadCorpusGenerator(CONFIG)
    generator.register_definitions(catalog)
    documents = list(generator.documents(N_DOCS))
    catalog.ingest_many(documents)
    roots = [parse(doc).root for doc in documents]
    return catalog, roots


def xpath_answer(catalog, roots, query):
    expressions = query_to_xpath(query, catalog.registry)
    return [
        i + 1
        for i, root in enumerate(roots)
        if xpath_matches_document(expressions, root)
    ]


class TestWorkloadEquivalence:
    def test_keyword_queries(self, env):
        catalog, roots = env
        workload = WorkloadGenerator(CONFIG)
        for i in range(8):
            query = workload.keyword_query(i)
            assert catalog.query(query) == xpath_answer(catalog, roots, query), i

    def test_parameter_queries(self, env):
        catalog, roots = env
        workload = WorkloadGenerator(CONFIG)
        for i in range(8):
            query = workload.parameter_query(i)
            assert catalog.query(query) == xpath_answer(catalog, roots, query), i

    def test_nested_queries(self, env):
        catalog, roots = env
        workload = WorkloadGenerator(CONFIG)
        for depth in (1, 2):
            for i in range(4):
                query = workload.nested_query(i, depth=depth)
                assert catalog.query(query) == xpath_answer(
                    catalog, roots, query
                ), (depth, i)

    def test_conjunctive_queries(self, env):
        catalog, roots = env
        workload = WorkloadGenerator(CONFIG)
        for i in range(6):
            query = workload.conjunctive_query(i)
            assert catalog.query(query) == xpath_answer(catalog, roots, query), i


class TestTranslationShapes:
    def test_structural_expression(self, env):
        from repro.core import AttributeCriteria, ObjectQuery

        catalog, _roots = env
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "rain")
        )
        [expression] = query_to_xpath(query, catalog.registry)
        assert expression == (
            "/LEADresource/data/idinfo/keywords/theme[themekey = 'rain']"
        )

    def test_leaf_attribute_expression(self, env):
        from repro.core import AttributeCriteria, ObjectQuery

        catalog, _roots = env
        query = ObjectQuery().add_attribute(
            AttributeCriteria("resourceID").add_element("resourceID", "", "x")
        )
        [expression] = query_to_xpath(query, catalog.registry)
        assert expression == "/LEADresource[resourceID = 'x']/resourceID"

    def test_dynamic_expression_mirrors_paper(self, env):
        from repro.core import AttributeCriteria, ObjectQuery

        catalog, _roots = env
        crit = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000)
        query = ObjectQuery().add_attribute(crit)
        [expression] = query_to_xpath(query, catalog.registry)
        assert expression.startswith(
            "/LEADresource/data/geospatial/eainfo/detailed"
            "[enttyp/enttypl = 'grid' and enttyp/enttypds = 'ARPS']"
        )
        assert "attrlabl = 'dx'" in expression
        assert "attrv = 1000" in expression

    def test_in_set_becomes_disjunction(self, env):
        from repro.core import AttributeCriteria, ObjectQuery

        catalog, roots = env
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element(
                "themekey", "", ["air_pressure", "wind_speed"], Op.IN_SET
            )
        )
        [expression] = query_to_xpath(query, catalog.registry)
        assert " or " in expression
        assert catalog.query(query) == xpath_answer(catalog, roots, query)

    def test_contains_untranslatable(self, env):
        from repro.core import AttributeCriteria, ObjectQuery

        catalog, _roots = env
        query = ObjectQuery().add_attribute(
            AttributeCriteria("theme").add_element("themekey", "", "x", Op.CONTAINS)
        )
        with pytest.raises(QueryError, match="CONTAINS"):
            query_to_xpath(query, catalog.registry)

    def test_unknown_definition(self, env):
        from repro.core import AttributeCriteria, ObjectQuery

        catalog, _roots = env
        query = ObjectQuery().add_attribute(AttributeCriteria("nope", "X"))
        with pytest.raises(QueryError, match="no attribute definition"):
            query_to_xpath(query, catalog.registry)
