"""Event log tests: envelope schema, registry validation, sampling,
rate cap, drop accounting, sidecar round-trip, and tailing."""

import json
import threading

import pytest

from repro.obs import EventLog, MetricsRegistry, read_events, tail_events
from repro.obs.events import RECENT_CAP, SCHEMA


class TestEmit:
    def test_envelope_shape(self):
        log = EventLog()
        assert log.emit("txn_rollback", site="catalog.ingest")
        record = log.recent[-1]
        assert record["schema"] == SCHEMA
        assert record["seq"] == 1
        assert record["event"] == "txn_rollback"
        assert record["fields"] == {"site": "catalog.ingest"}
        assert isinstance(record["ts"], float)

    def test_seq_monotonic(self):
        log = EventLog()
        for _ in range(5):
            log.emit("query", attrs=1, elems=1, matches=0,
                     seconds=0.0, cache="miss")
        assert [r["seq"] for r in log.recent] == [1, 2, 3, 4, 5]

    def test_undeclared_event_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="not declared"):
            log.emit("no_such_event")

    def test_undeclared_field_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="undeclared field"):
            log.emit("txn_rollback", site="x", extra=1)

    def test_closed_log_drops(self):
        registry = MetricsRegistry()
        log = EventLog(registry=registry)
        log.close()
        assert not log.emit("txn_rollback", site="x")
        dropped = registry.get("events_dropped_total")
        assert dropped.labels(reason="closed").value == 1


class TestSamplingAndRateCap:
    def test_sampling_keeps_every_nth(self):
        log = EventLog(sample={"query": 3})
        written = [
            log.emit("query", attrs=1, elems=1, matches=0,
                     seconds=0.0, cache="miss")
            for _ in range(9)
        ]
        # Counter-based: the 1st, 4th, 7th offered records are kept.
        assert written == [True, False, False] * 3
        assert len(log.recent) == 3
        assert log.emitted("query") == 9  # pre-sampling count

    def test_sampling_validates_config(self):
        with pytest.raises(ValueError):
            EventLog(sample={"no_such_event": 2})
        with pytest.raises(ValueError):
            EventLog(sample={"query": 0})

    def test_unsampled_events_unaffected(self):
        log = EventLog(sample={"query": 10})
        assert log.emit("txn_rollback", site="x")
        assert log.emit("txn_rollback", site="x")

    def test_rate_cap_bounds_one_window(self):
        registry = MetricsRegistry()
        log = EventLog(rate_cap=2, registry=registry)
        results = [log.emit("txn_rollback", site="x") for _ in range(5)]
        # All five land in the same wall-clock second in practice; at
        # most 2 may be written per window either way.
        assert sum(results) <= 2
        dropped = registry.get("events_dropped_total")
        assert dropped.labels(reason="rate_cap").value >= 3

    def test_drop_accounting_counts_sampled(self):
        registry = MetricsRegistry()
        log = EventLog(sample={"query": 2}, registry=registry)
        for _ in range(4):
            log.emit("query", attrs=0, elems=0, matches=0,
                     seconds=0.0, cache="miss")
        emitted = registry.get("events_emitted_total")
        dropped = registry.get("events_dropped_total")
        assert emitted.labels(event="query").value == 2
        assert dropped.labels(reason="sampled").value == 2


class TestSidecar:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cat.events.jsonl"
        with EventLog(path) as log:
            log.emit("txn_rollback", site="a")
            log.emit("txn_retry", site="b")
        records = list(read_events(path))
        assert [r["event"] for r in records] == ["txn_rollback", "txn_retry"]
        assert all(r["schema"] == SCHEMA for r in records)

    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = tmp_path / "cat.events.jsonl"
        with EventLog(path) as log:
            log.emit("fault_injected", site="insert:objects")
        line = path.read_text().strip()
        record = json.loads(line)
        assert json.dumps(record, separators=(",", ":"), sort_keys=True) == line

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "cat.events.jsonl"
        with EventLog(path) as log:
            log.emit("txn_rollback", site="a")
            log.emit("txn_retry", site="b")
        text = path.read_text()
        path.write_text(text + '{"schema": "repro.events/v1", "tru')
        assert [r["event"] for r in read_events(path)] == [
            "txn_rollback", "txn_retry"
        ]

    def test_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "cat.events.jsonl"
        path.write_text('not json\n{"schema": "other/v9"}\n\n')
        with EventLog(path) as log:  # appends, does not truncate
            log.emit("txn_rollback", site="a")
        assert [r["event"] for r in read_events(path)] == ["txn_rollback"]

    def test_tail_last_n_and_filter(self, tmp_path):
        path = tmp_path / "cat.events.jsonl"
        with EventLog(path) as log:
            for i in range(7):
                log.emit("txn_rollback", site=f"s{i}")
            log.emit("txn_retry", site="r")
        tail = tail_events(path, count=3)
        assert [r["fields"]["site"] for r in tail] == ["s5", "s6", "r"]
        only = tail_events(path, count=10, event="txn_retry")
        assert [r["event"] for r in only] == ["txn_retry"]


class TestConcurrency:
    def test_concurrent_emits_unique_seqs(self, tmp_path):
        path = tmp_path / "cat.events.jsonl"
        log = EventLog(path)
        n_threads, per_thread = 8, 50

        def worker():
            for _ in range(per_thread):
                log.emit("txn_retry", site="t")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        records = list(read_events(path))
        assert len(records) == n_threads * per_thread
        seqs = [r["seq"] for r in records]
        assert sorted(seqs) == list(range(1, n_threads * per_thread + 1))

    def test_recent_ring_bounded(self):
        log = EventLog()
        for _ in range(RECENT_CAP + 40):
            log.emit("txn_retry", site="t")
        assert len(log.recent) == RECENT_CAP
        assert log.recent[-1]["seq"] == RECENT_CAP + 40
