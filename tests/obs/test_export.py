"""Exporter tests: JSON round-trip, Prometheus exposition golden,
console table."""

import json
import math
import re

from repro.obs import (
    MetricsRegistry,
    load_snapshot,
    render_json,
    render_prometheus,
    render_table,
)

# One Prometheus sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_exposition(text):
    """Parse the text exposition line by line into (samples, types)."""
    samples, types = {}, {}
    for line in text.splitlines():
        assert line, "exposition must not contain blank lines"
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        key = (match.group("name"), tuple(sorted(labels.items())))
        samples[key] = match.group("value")
    return samples, types


def _loaded_registry():
    registry = MetricsRegistry()
    registry.counter("shredder_clobs_total", help="CLOBs written").inc(4)
    registry.gauge("catalog_objects").set(2)
    ops = registry.counter("service_ops_total", labels=("op",))
    ops.labels(op="ingest").inc(2)
    ops.labels(op="query").inc()
    hist = registry.histogram("catalog_ingest_seconds",
                              help="ingest latency", buckets=(0.1, 1.0))
    # Binary-exact values so the rendered _sum is deterministic.
    hist.observe(0.0625)
    hist.observe(0.5)
    hist.observe(7.0)
    return registry


class TestPrometheus:
    def test_golden_exposition(self):
        text = render_prometheus(_loaded_registry())
        expected = "\n".join([
            "# HELP catalog_ingest_seconds ingest latency",
            "# TYPE catalog_ingest_seconds histogram",
            'catalog_ingest_seconds_bucket{le="0.1"} 1',
            'catalog_ingest_seconds_bucket{le="1"} 2',
            'catalog_ingest_seconds_bucket{le="+Inf"} 3',
            "catalog_ingest_seconds_sum 7.5625",
            "catalog_ingest_seconds_count 3",
            "# TYPE catalog_objects gauge",
            "catalog_objects 2",
            "# TYPE service_ops_total counter",
            'service_ops_total{op="ingest"} 2',
            'service_ops_total{op="query"} 1',
            "# HELP shredder_clobs_total CLOBs written",
            "# TYPE shredder_clobs_total counter",
            "shredder_clobs_total 4",
        ]) + "\n"
        assert text == expected

    def test_every_line_parses(self):
        samples, types = _parse_exposition(render_prometheus(_loaded_registry()))
        assert types == {
            "catalog_ingest_seconds": "histogram",
            "catalog_objects": "gauge",
            "service_ops_total": "counter",
            "shredder_clobs_total": "counter",
        }
        assert samples[("shredder_clobs_total", ())] == "4"
        assert samples[("service_ops_total", (("op", "ingest"),))] == "2"
        # Histogram buckets are cumulative and end at +Inf == count.
        assert samples[("catalog_ingest_seconds_bucket", (("le", "+Inf"),))] == "3"
        assert samples[("catalog_ingest_seconds_count", ())] == "3"

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("name",))
        family.labels(name='we"ird\\path\nline').inc()
        text = render_prometheus(registry)
        assert 'name="we\\"ird\\\\path\\nline"' in text
        samples, _types = _parse_exposition(text)
        assert len(samples) == 1

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestJson:
    def test_round_trip_through_text(self):
        registry = _loaded_registry()
        text = render_json(registry)
        data = json.loads(text)
        assert data["schema"] == "repro.obs/v1"
        restored = MetricsRegistry()
        load_snapshot(restored, text)
        assert restored.counter("shredder_clobs_total").value == 4
        assert restored.gauge("catalog_objects").value == 2
        hist = restored.histogram(
            "catalog_ingest_seconds", buckets=(0.1, 1.0)
        ).labels()
        assert hist.count == 3
        assert hist.sum == 7.5625

    def test_non_finite_values_are_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("x_seconds").labels()  # empty: p50/p95/p99 are nan
        registry.histogram("y_seconds").observe(math.inf)
        json.loads(render_json(registry))  # must not raise


class TestTable:
    def test_table_lines(self):
        text = render_table(_loaded_registry())
        lines = text.splitlines()
        assert 'service_ops_total{op="ingest"}  2' in lines
        assert "catalog_objects  2" in lines
        hist_line = next(l for l in lines if l.startswith("catalog_ingest_seconds"))
        assert "count=3" in hist_line and "p50=" in hist_line

    def test_empty_histogram_row(self):
        registry = MetricsRegistry()
        registry.histogram("x_seconds").labels()
        assert "count=0" in render_table(registry)


class TestExpositionConformance:
    """Prometheus text-format conformance (the PR 6 exporter audit):
    HELP continuation escaping, metric name sanitization, and a full
    parse of every rendered line."""

    def test_help_newlines_and_backslashes_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", help="line one\nline two \\ done").inc()
        text = render_prometheus(registry)
        assert "# HELP x_total line one\\nline two \\\\ done" in text
        # The physical line count is unchanged by the embedded newline.
        assert len(text.splitlines()) == 3

    def test_metric_name_sanitization(self):
        from repro.obs.export import _sanitize_metric_name

        assert _sanitize_metric_name("ok_total") == "ok_total"
        assert _sanitize_metric_name("ns:role_total") == "ns:role_total"
        assert _sanitize_metric_name("9bad-name.x") == "_9bad_name_x"
        assert _sanitize_metric_name("") == "_"
        assert _sanitize_metric_name("über_total") == "_ber_total"

    def test_every_line_conforms(self):
        registry = _loaded_registry()
        registry.counter(
            "weird_total", help="multi\nline \\ help", labels=("who",)
        ).labels(who='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        seen_types = {}
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                _, kind, name = line.split(" ", 2)
                name = name.split(" ", 1)[0]
                assert name_re.match(name), line
                if kind == "TYPE":
                    seen_types[name] = line.rsplit(" ", 1)[1]
                    assert seen_types[name] in (
                        "counter", "gauge", "histogram"
                    )
                continue
            match = _SAMPLE_RE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            assert name_re.match(match.group("name")), line
            float(match.group("value"))  # numeric (inf/nan allowed)
        samples, _types = _parse_exposition(text)
        # The parser keeps label values in their escaped wire form.
        assert samples[
            ("weird_total", (("who", 'a\\"b\\\\c\\nd'),))
        ] == "1"
