"""Integration tests: the instrumented pipeline records the expected
metrics and spans on both backends, without cross-catalog bleed."""

import pytest

from repro.backends import SqliteHybridStore
from repro.core.catalog import HybridCatalog
from repro.core.query import AttributeCriteria, ObjectQuery, Op
from repro.core.storage import PlanTrace
from repro.errors import CatalogError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.grid.service import MyLeadService
from repro.obs import MetricsRegistry

#: The acceptance-criteria metric names an ingest+query session must hit.
REQUIRED_METRICS = (
    "catalog_ingest_seconds",
    "catalog_query_seconds",
    "shredder_clobs_total",
    "planner_stage_rows",
    "sqlite_statements_total",
)


def _session(store=None):
    """Run one ingest+query+fetch session against a private registry."""
    registry = MetricsRegistry()
    catalog = HybridCatalog(lead_schema(), store=store, metrics=registry)
    define_fig3_attributes(catalog)
    catalog.ingest(FIG3_DOCUMENT, name="fig3")
    grid = AttributeCriteria("grid", "ARPS").add_element("dx", "ARPS", 1000, Op.EQ)
    query = ObjectQuery().add_attribute(grid)
    responses = catalog.search(query)
    assert len(responses) == 1
    return registry, catalog


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_session_records_required_metrics(backend):
    store = SqliteHybridStore() if backend == "sqlite" else None
    registry, _catalog = _session(store)
    expected = set(REQUIRED_METRICS)
    if backend == "memory":
        expected.discard("sqlite_statements_total")
    missing = expected - set(registry.names())
    assert not missing, f"missing metrics: {sorted(missing)}"


def test_ingest_and_query_counters_and_gauge():
    registry, catalog = _session()
    assert registry.counter("catalog_ingests_total").value == 1
    assert registry.counter("catalog_queries_total").value == 1
    assert registry.gauge("catalog_objects").value == 1
    assert registry.counter("shredder_clobs_total").value > 0
    assert registry.histogram("catalog_ingest_seconds").labels().count == 1
    catalog.delete(1)
    assert registry.gauge("catalog_objects").value == 0
    assert registry.counter("catalog_deletes_total").value == 1


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_delete_produces_root_span_and_duration(backend):
    store = SqliteHybridStore() if backend == "sqlite" else None
    registry, catalog = _session(store)
    catalog.delete(1)
    roots = [s for s in catalog.tracer.recent() if s.name == "catalog.delete"]
    assert roots, "catalog.delete must produce a root span"
    span = roots[-1]
    assert span.attrs["object_id"] == 1
    assert span.duration is not None
    # Span-name histograms land alongside the other pipeline timings,
    # and the gauge reflects the deletion.
    assert registry.histogram("catalog_delete_seconds").labels().count == 1
    assert registry.gauge("catalog_objects").value == 0


def test_planner_stage_rows_labeled_by_stage():
    registry, _catalog = _session()
    family = registry.get("planner_stage_rows")
    stages = {labels["stage"] for labels, _metric in family.series()}
    assert stages  # at least one Fig-4 stage observed
    assert all(stages)  # no empty stage labels


def test_search_span_nests_query_and_fetch():
    registry, catalog = _session()
    roots = [s for s in catalog.tracer.recent() if s.name == "catalog.search"]
    assert roots, "catalog.search must produce a root span"
    root = roots[-1]
    assert root.find("catalog.query") is not None
    assert root.find("catalog.fetch") is not None
    # Plan stages fold into the query span as events (one per stage).
    query_span = root.find("catalog.query")
    assert query_span.events
    assert all("rows" in e.fields for e in query_span.events)
    assert "catalog.query" in root.describe()


def test_sqlite_statement_and_row_accounting():
    registry, _catalog = _session(SqliteHybridStore())
    kinds = {
        labels["kind"]
        for labels, _m in registry.get("sqlite_statements_total").series()
    }
    assert "execute" in kinds
    assert registry.counter("sqlite_rows_fetched_total").value > 0
    assert registry.histogram("sqlite_txn_seconds").labels().count > 0


def test_response_volume_counters():
    registry, _catalog = _session()
    assert registry.counter("response_documents_total").value >= 1
    assert registry.counter("response_bytes_total").value > 0


def test_two_catalogs_do_not_share_series():
    a, _ = _session()
    b = MetricsRegistry()
    HybridCatalog(lead_schema(), metrics=b)  # constructed, never ingested
    assert "catalog_ingest_seconds" in a
    assert "catalog_ingest_seconds" not in b


def test_service_op_and_visibility_counters():
    registry = MetricsRegistry()
    catalog = HybridCatalog(lead_schema(), metrics=registry)
    service = MyLeadService(lead_schema(), catalog)
    service.create_user("alice")
    service.create_user("bob")
    exp = service.create_experiment("alice", "run-1")
    receipt = service.add_file("alice", exp, FIG3_DOCUMENT, name="f1")
    ops = registry.get("service_ops_total")
    recorded = {
        (labels["op"], labels["user"]): metric.value
        for labels, metric in ops.series()
    }
    assert recorded[("create_experiment", "alice")] == 1
    assert recorded[("add_file", "alice")] == 1
    # bob cannot see alice's unpublished file.
    with pytest.raises(CatalogError):
        service.fetch("bob", [receipt.object_id])
    assert registry.counter("service_visibility_denied_total").value >= 1


class TestPlanTrace:
    def test_empty_describe(self):
        assert PlanTrace().describe() == "(no stages)"

    def test_as_dict(self):
        trace = PlanTrace()
        trace.add("candidate-attrs", 12, note="name/source match")
        trace.add("final", 3)
        assert trace.as_dict() == {
            "stages": [
                {"name": "candidate-attrs", "rows": 12,
                 "note": "name/source match"},
                {"name": "final", "rows": 3, "note": ""},
            ]
        }
