"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("ops_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", labels=("op",))
        family.labels(op="ingest").inc(3)
        family.labels(op="query").inc()
        assert family.labels(op="ingest").value == 3
        assert family.labels(op="query").value == 1

    def test_wrong_labels_rejected(self):
        family = MetricsRegistry().counter("ops_total", labels=("op",))
        with pytest.raises(ValueError):
            family.labels(user="alice")

    def test_same_labels_return_same_child(self):
        family = MetricsRegistry().counter("ops_total", labels=("op",))
        assert family.labels(op="x") is family.labels(op="x")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("objects")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_bucketed_once(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            hist.observe(value)
        # Per-bucket: one <=1, one <=2, one in +Inf.
        cumulative = hist.cumulative_buckets()
        assert cumulative == [(1.0, 1), (2.0, 2), (math.inf, 3)]
        assert hist.count == 3
        assert hist.sum == pytest.approx(101.0)

    def test_inf_bucket_always_present(self):
        hist = Histogram(buckets=(1.0,))
        assert hist.bounds[-1] == math.inf

    def test_percentile_exact_and_interpolated(self):
        hist = Histogram()
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        # rank = 0.5 * 99 = 49.5 -> halfway between 50 and 51.
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(95) == pytest.approx(95.05)

    def test_percentile_empty_is_nan(self):
        assert math.isnan(Histogram().percentile(50))

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_summary_fields(self):
        hist = Histogram()
        hist.observe(2.0)
        hist.observe(4.0)
        s = hist.summary()
        assert s["count"] == 2
        assert s["sum"] == pytest.approx(6.0)
        assert s["min"] == 2.0
        assert s["max"] == 4.0
        assert s["p50"] == pytest.approx(3.0)

    def test_merge_dict_same_buckets(self):
        a, b = Histogram(buckets=(1.0, 2.0)), Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.merge_dict(a.as_dict())
        assert b.count == 2
        assert b.cumulative_buckets()[-1][1] == 2

    def test_merge_dict_rebuckets_mismatched_bounds(self):
        src = Histogram(buckets=(10.0,))
        src.observe(0.5)
        src.observe(5.0)
        dst = Histogram(buckets=(1.0, 2.0))
        dst.merge_dict(src.as_dict())
        assert dst.count == 2
        # Cumulative +Inf total must still equal the count.
        assert dst.cumulative_buckets()[-1][1] == 2
        assert dst.cumulative_buckets()[0] == (1.0, 1)


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels=("bad-label",))

    def test_collect_sorted_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.counter("a_total")
        assert registry.names() == ["a_total", "b_total"]
        assert "a_total" in registry
        assert registry.get("missing") is None

    def test_snapshot_round_trip(self):
        src = MetricsRegistry()
        src.counter("ops_total", labels=("op",)).labels(op="ingest").inc(7)
        src.gauge("objects").set(3)
        src.histogram("lat_seconds").observe(0.25)
        dst = MetricsRegistry()
        dst.load(src.as_dict())
        dst.load(src.as_dict())  # counters/histograms accumulate
        assert dst.counter("ops_total", labels=("op",)).labels(op="ingest").value == 14
        assert dst.gauge("objects").value == 3  # gauges take the snapshot
        assert dst.histogram("lat_seconds").labels().count == 2

    def test_default_registry_swap(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is previous

    def test_default_buckets_cover_sub_ms_to_seconds(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert 10.0 in DEFAULT_BUCKETS


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        hist = registry.histogram("lat_seconds")
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread
        assert hist.labels().count == n_threads * per_thread
        assert hist.labels().cumulative_buckets()[-1][1] == n_threads * per_thread

    def test_concurrent_label_creation_single_child(self):
        family = MetricsRegistry().counter("ops_total", labels=("op",))
        seen = []

        def work():
            seen.append(family.labels(op="same"))

        threads = [threading.Thread(target=work) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(child is seen[0] for child in seen)


class TestHistogramEdgeCases:
    """Regressions for the PR 6 histogram audit: degenerate percentile
    inputs, NaN rejection, and summary consistency under concurrent
    observers."""

    def test_single_sample_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("solo_seconds").labels()
        hist.observe(0.25)
        for q in (0, 1, 50, 95, 99, 100):
            assert hist.percentile(q) == 0.25

    def test_empty_summary_well_defined(self):
        registry = MetricsRegistry()
        hist = registry.histogram("void_seconds").labels()
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["sum"] == 0.0
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["p95"])

    def test_nan_observation_rejected(self):
        registry = MetricsRegistry()
        hist = registry.histogram("guarded_seconds").labels()
        with pytest.raises(ValueError, match="NaN"):
            hist.observe(math.nan)
        # The rejected observation must leave no partial state behind.
        assert hist.count == 0
        assert hist.cumulative_buckets()[-1][1] == 0

    def test_infinite_observation_lands_in_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("inf_seconds").labels()
        hist.observe(math.inf)
        buckets = hist.cumulative_buckets()
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == 1
        assert all(cum == 0 for bound, cum in buckets[:-1])

    def test_concurrent_observe_summary_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("busy_seconds").labels()
        n_threads, per_thread = 8, 1000
        stop = threading.Event()
        snapshots = []

        def observer():
            for _ in range(per_thread):
                hist.observe(0.005)

        def reader():
            while not stop.is_set():
                snapshots.append(hist.summary())

        threads = [threading.Thread(target=observer) for _ in range(n_threads)]
        watcher = threading.Thread(target=reader)
        watcher.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        watcher.join()
        final = hist.summary()
        assert final["count"] == n_threads * per_thread
        assert final["sum"] == pytest.approx(0.005 * n_threads * per_thread)
        for snap in snapshots:
            # count/sum/min/max are read under the histogram lock, so
            # every mid-flight summary is internally consistent.
            if snap["count"]:
                assert snap["sum"] == pytest.approx(0.005 * snap["count"])
                assert snap["min"] == 0.005 and snap["max"] == 0.005
            else:
                assert snap["sum"] == 0.0
