"""QueryProfile unit tests: contextvar activation, row-flow derivation
from plan actuals, wait attribution, and rendering."""

import threading

from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery, Op
from repro.core.logical import build_plan
from repro.core.query import shred_query
from repro.core.stats import CatalogStatistics
from repro.grid import lead_schema
from repro.obs import QueryProfile, collecting, current_profile
from repro.obs.metrics import MetricsRegistry

DOCS = [
    """<LEADresource><resourceID>r{i}</resourceID><data><idinfo>
    <keywords><theme><themekey>{kw}</themekey></theme></keywords>
    </idinfo></data></LEADresource>""".format(i=i, kw=kw)
    for i, kw in enumerate(["rain", "rain", "wind"])
]


def _catalog():
    catalog = HybridCatalog(lead_schema(), metrics=MetricsRegistry())
    for i, doc in enumerate(DOCS):
        catalog.ingest(doc, name=f"d{i}")
    return catalog


def _query(keyword="rain", op=Op.CONTAINS):
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element("themekey", "", keyword, op)
    )


class TestContextVar:
    def test_no_profile_by_default(self):
        assert current_profile() is None

    def test_collecting_installs_and_resets(self):
        profile = QueryProfile()
        with collecting(profile) as active:
            assert active is profile
            assert current_profile() is profile
        assert current_profile() is None
        assert profile.total_seconds is not None

    def test_collecting_resets_on_error(self):
        profile = QueryProfile()
        try:
            with collecting(profile):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_profile() is None

    def test_profiles_are_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = current_profile()

        with collecting(QueryProfile()):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None


class TestRowFlow:
    def test_stages_derived_from_actuals(self):
        catalog = _catalog()
        shredded = catalog.shred_query(_query())
        plan = build_plan(shredded, CatalogStatistics(catalog.store))
        catalog.store.match_objects(plan)
        profile = QueryProfile()
        profile.record_plan(plan, backend="memory")
        kinds = profile.stage_names()
        assert kinds[0] == "ElementSeek"
        assert kinds[-1] == "ObjectIntersect"
        seek = profile.stages[0]
        assert seek.rows_in == 0
        assert seek.rows_out == 2  # two rain documents
        assert profile.stages[-1].rows_out == 2
        assert not profile.short_circuited

    def test_short_circuit_detected(self):
        catalog = _catalog()
        shredded = catalog.shred_query(_query("no_such_keyword", Op.EQ))
        plan = build_plan(shredded, CatalogStatistics(catalog.store))
        catalog.store.match_objects(plan)
        profile = QueryProfile()
        profile.record_plan(plan, backend="memory")
        assert profile.short_circuited
        assert profile.rows_out()[0] == 0
        assert "short-circuited" in profile.describe()

    def test_unexecuted_stage_seconds_default_zero(self):
        catalog = _catalog()
        shredded = catalog.shred_query(_query())
        plan = build_plan(shredded, CatalogStatistics(catalog.store))
        catalog.store.match_objects(plan)
        profile = QueryProfile()  # stage_seconds never filled
        profile.record_plan(plan, backend="memory")
        assert all(stage.seconds == 0.0 for stage in profile.stages)


class TestWaitsAndFlags:
    def test_add_wait_accumulates(self):
        profile = QueryProfile()
        profile.add_wait("lock", 0.25)
        profile.add_wait("lock", 0.25)
        profile.add_wait("pool", 0.1)
        assert profile.waits["lock"] == 0.5
        assert profile.waits["pool"] == 0.1

    def test_finish_idempotent(self):
        profile = QueryProfile()
        profile.finish()
        first = profile.total_seconds
        profile.finish()
        assert profile.total_seconds == first

    def test_result_cache_hit_shape(self):
        profile = QueryProfile()
        profile.result_cache_hit = True
        profile.finish()
        assert profile.stages == []
        assert "result cache" in profile.describe()
        as_dict = profile.as_dict()
        assert as_dict["result_cache_hit"] is True
        assert as_dict["stages"] == []


class TestEstimates:
    def test_est_delta_signs(self):
        catalog = _catalog()
        explanation = catalog.explain(_query(), analyze=True)
        profile = explanation.profile
        assert profile is not None
        seek = profile.stages[0]
        assert seek.est_rows is not None
        assert seek.est_delta() == seek.rows_out - seek.est_rows
        # The rendered table carries est-vs-actual deltas per stage.
        assert "Δ" in profile.describe()

    def test_as_dict_round_trips_stage_keys(self):
        catalog = _catalog()
        explanation = catalog.explain(_query(), analyze=True)
        dumped = explanation.profile.as_dict()
        kinds = [s["kind"] for s in dumped["stages"]]
        assert kinds == explanation.profile.stage_names()
        assert dumped["backend"] == "memory"
        assert dumped["plan_cache_hit"] is False
