"""Windowed-series tests: ring capacity, rate/gauge/p95 math from
controlled samples, and the bucket-delta percentile edge cases."""

import math

import pytest

from repro.obs import MetricsRegistry, RingSeries, SeriesCollector
from repro.obs.names import SERIES
from repro.obs.series import _bucket_delta_percentile


class TestRingSeries:
    def test_capacity_bounds_points(self):
        ring = RingSeries("qps", "rate", capacity=3)
        for i in range(5):
            ring.append(float(i), float(i * 10))
        assert ring.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert ring.values() == [20.0, 30.0, 40.0]
        assert ring.last() == 40.0
        assert len(ring) == 3

    def test_empty_ring(self):
        ring = RingSeries("qps", "rate")
        assert ring.last() is None
        assert ring.points() == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingSeries("qps", "rate", capacity=0)


class TestCollector:
    def test_one_ring_per_declared_series(self):
        collector = SeriesCollector(MetricsRegistry())
        assert set(collector.series) == set(SERIES)
        for name, ring in collector.series.items():
            assert ring.mode == SERIES[name].mode

    def test_baseline_sample_produces_only_gauges(self):
        collector = SeriesCollector(MetricsRegistry())
        produced = collector.sample(now=100.0)
        assert set(produced) == {
            name for name, spec in SERIES.items() if spec.mode == "gauge"
        }

    def test_rate_from_counter_delta(self):
        registry = MetricsRegistry()
        queries = registry.counter("catalog_queries_total", "queries")
        collector = SeriesCollector(registry)
        collector.sample(now=100.0)
        queries.inc(30)
        produced = collector.sample(now=103.0)
        assert produced["qps"] == pytest.approx(10.0)
        # No further activity: the next interval's rate is zero.
        assert collector.sample(now=104.0)["qps"] == 0.0

    def test_rate_sums_label_sets(self):
        registry = MetricsRegistry()
        rollbacks = registry.counter(
            "txn_rollbacks_total", "rollbacks", labels=("site",)
        )
        collector = SeriesCollector(registry)
        collector.sample(now=10.0)
        rollbacks.labels(site="a").inc(2)
        rollbacks.labels(site="b").inc(2)
        assert collector.sample(now=12.0)["error_rate"] == pytest.approx(2.0)

    def test_p95_from_bucket_deltas(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "catalog_query_seconds", "query latency",
            buckets=(0.1, 0.2, 0.4),
        )
        collector = SeriesCollector(registry)
        collector.sample(now=1.0)
        for _ in range(95):
            hist.observe(0.15)
        for _ in range(5):
            hist.observe(0.3)
        produced = collector.sample(now=2.0)
        # p95 lands exactly on the 0.1–0.2 bucket's upper edge.
        assert produced["query_p95"] == pytest.approx(0.2)

    def test_p95_nan_without_observations(self):
        registry = MetricsRegistry()
        registry.histogram("catalog_query_seconds", "query latency")
        collector = SeriesCollector(registry)
        collector.sample(now=1.0)
        produced = collector.sample(now=2.0)
        assert math.isnan(produced["query_p95"])

    def test_p95_merges_reader_and_writer_waits(self):
        registry = MetricsRegistry()
        readers = registry.histogram(
            "rwlock_reader_wait_seconds", "r", buckets=(0.1, 1.0)
        )
        writers = registry.histogram(
            "rwlock_writer_wait_seconds", "w", buckets=(0.1, 1.0)
        )
        collector = SeriesCollector(registry)
        collector.sample(now=1.0)
        for _ in range(10):
            readers.observe(0.05)
        for _ in range(10):
            writers.observe(0.5)
        value = collector.sample(now=2.0)["lock_wait_p95"]
        assert 0.1 < value <= 1.0

    def test_gauge_reads_instantaneous_value(self):
        registry = MetricsRegistry()
        depth = registry.gauge("pool_queue_depth", "queued readers")
        collector = SeriesCollector(registry)
        depth.set(3)
        assert collector.sample(now=1.0)["pool_queue_depth"] == 3.0
        depth.set(0)
        assert collector.sample(now=2.0)["pool_queue_depth"] == 0.0

    def test_latest_tracks_newest_point(self):
        registry = MetricsRegistry()
        registry.counter("catalog_queries_total", "queries").inc()
        collector = SeriesCollector(registry)
        assert collector.latest()["qps"] is None
        collector.sample(now=1.0)
        collector.sample(now=2.0)
        assert collector.latest()["qps"] == 0.0


class TestBucketDeltaPercentile:
    def test_interpolates_within_bucket(self):
        previous = {0.1: 0, 0.2: 0, math.inf: 0}
        current = {0.1: 0, 0.2: 100, math.inf: 100}
        # Every observation is in (0.1, 0.2]; p50 interpolates halfway.
        value = _bucket_delta_percentile(previous, current, 50)
        assert value == pytest.approx(0.15)

    def test_no_new_observations_is_nan(self):
        snap = {0.1: 5, math.inf: 7}
        assert math.isnan(_bucket_delta_percentile(snap, snap, 95))

    def test_overflow_bucket_reports_highest_finite_bound(self):
        previous = {0.1: 0, math.inf: 0}
        current = {0.1: 0, math.inf: 10}  # all beyond the last bound
        assert _bucket_delta_percentile(previous, current, 95) == 0.1

    def test_empty_snapshots_are_nan(self):
        assert math.isnan(_bucket_delta_percentile({}, {}, 95))
