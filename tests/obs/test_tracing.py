"""Unit tests for span tracing (nesting, metrics feed, ring buffer)."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    current_span,
    default_tracer,
    set_default_tracer,
    span,
)


class TestNesting:
    def test_children_attach_to_parent(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("outer") as outer:
            with tracer.span("inner.first"):
                pass
            with tracer.span("inner.second"):
                pass
        assert [c.name for c in outer.children] == ["inner.first", "inner.second"]
        assert all(c.duration is not None for c in outer.children)

    def test_current_span_tracks_innermost(self):
        tracer = Tracer(MetricsRegistry())
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_only_roots_enter_ring_buffer(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.recent()] == ["root"]

    def test_ring_buffer_bounded(self):
        tracer = Tracer(MetricsRegistry(), keep=3)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.recent()] == ["op2", "op3", "op4"]
        tracer.clear()
        assert tracer.recent() == []


class TestMetricsFeed:
    def test_span_duration_observed_as_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.span("catalog.ingest"):
            pass
        hist = registry.get("catalog_ingest_seconds").labels()
        assert hist.count == 1
        assert hist.sum >= 0

    def test_metric_name_sanitizes_dots_and_dashes(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("a.b-c") as s:
            pass
        assert s.metric_name() == "a_b_c_seconds"


class TestErrorsAndEvents:
    def test_error_status_recorded_and_reraised(self):
        tracer = Tracer(MetricsRegistry())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (root,) = tracer.recent()
        assert root.status == "error"
        assert "RuntimeError: boom" in root.error
        assert root.duration is not None

    def test_events_and_attrs_in_describe(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("catalog.query", criteria=2) as s:
            s.event("plan.stage", stage="attr-match", rows=17)
            s.set(matches=3)
        text = s.describe()
        assert "catalog.query" in text
        assert "criteria=2" in text
        assert "matches=3" in text
        assert "plan.stage" in text and "rows=17" in text

    def test_as_dict_and_find(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        data = outer.as_dict()
        assert data["name"] == "outer"
        assert data["children"][0]["name"] == "inner"
        assert outer.find("inner").name == "inner"
        assert outer.find("missing") is None


class TestDefaults:
    def test_module_level_span_uses_default_tracer(self):
        mine = Tracer(MetricsRegistry())
        previous = set_default_tracer(mine)
        try:
            with span("standalone"):
                pass
            assert default_tracer() is mine
            assert [s.name for s in mine.recent()] == ["standalone"]
        finally:
            set_default_tracer(previous)
