"""Batch kernels and vectorized-predicate agreement.

The columnar path (``compile_batch`` → bitmap) must agree bit-for-bit
with the legacy scalar path (``compile`` → per-row closure); the
hypothesis property at the bottom drives random predicate trees over
random NULL-bearing batches to pin that equivalence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    ColumnBatch,
    TableError,
    eq,
    ge,
    gt,
    in_,
    intersect_many,
    intersect_sorted,
    is_null,
    le,
    lt,
    mask_and,
    mask_not,
    mask_or,
    mask_to_selection,
    ne,
    not_null,
    selection_to_mask,
)


class TestColumnBatch:
    def test_length_and_row_access(self):
        batch = ColumnBatch(("a", "b"), [[1, 2, 3], ["x", "y", "z"]])
        assert len(batch) == 3
        assert batch.row(1) == (2, "y")
        assert batch.column("b") == ["x", "y", "z"]
        assert list(batch.iter_rows()) == [(1, "x"), (2, "y"), (3, "z")]

    def test_empty_batch(self):
        assert len(ColumnBatch((), [])) == 0
        assert list(ColumnBatch((), []).iter_rows()) == []

    def test_mismatched_columns_rejected(self):
        with pytest.raises(TableError):
            ColumnBatch(("a", "b"), [[1]])

    def test_unknown_column_raises(self):
        with pytest.raises(TableError):
            ColumnBatch(("a",), [[1]]).column("zz")

    def test_take_materializes_selection(self):
        batch = ColumnBatch(("a", "b"), [[1, 2, 3], [10, 20, 30]])
        taken = batch.take([0, 2])
        assert list(taken.iter_rows()) == [(1, 10), (3, 30)]
        # take copies: mutating the projection leaves the source alone.
        taken.data[0][0] = 99
        assert batch.column("a") == [1, 2, 3]


class TestMaskKernels:
    def test_and_or_not(self):
        a = bytearray([1, 1, 0, 0])
        b = bytearray([1, 0, 1, 0])
        assert mask_and(a, b) == bytearray([1, 0, 0, 0])
        assert mask_or(a, b) == bytearray([1, 1, 1, 0])
        assert mask_not(a) == bytearray([0, 0, 1, 1])

    def test_mask_selection_roundtrip(self):
        mask = bytearray([0, 1, 1, 0, 1])
        selection = mask_to_selection(mask)
        assert selection == [1, 2, 4]
        assert selection_to_mask(selection, 5) == mask


class TestIntersect:
    def test_merge_walk(self):
        assert intersect_sorted([1, 3, 5, 7], [3, 4, 5, 6]) == [3, 5]

    def test_empty_sides(self):
        assert intersect_sorted([], [1, 2]) == []
        assert intersect_sorted([1, 2], []) == []

    def test_skewed_sizes_take_probe_path(self):
        small = [5, 500, 995]
        big = list(range(1000))
        assert intersect_sorted(small, big) == small
        assert intersect_sorted(big, small) == small

    def test_intersect_many(self):
        vectors = [[1, 2, 3, 4], [2, 3, 4, 5], [0, 2, 4, 6]]
        assert intersect_many(vectors) == [2, 4]
        assert intersect_many([]) == []
        assert intersect_many([[1, 2], [], [1]]) == []


# ---------------------------------------------------------------------------
# Property: compile_batch agrees bit-for-bit with the scalar compile.
# ---------------------------------------------------------------------------

COLUMNS = ("a", "b")

ints = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))
texts = st.one_of(st.none(), st.sampled_from(["", "x", "yy", "zzz"]))

int_value = st.integers(min_value=-5, max_value=5)
text_value = st.sampled_from(["", "x", "yy", "zzz"])

leaves = st.one_of(
    st.builds(eq, st.just("a"), int_value),
    st.builds(ne, st.just("a"), int_value),
    st.builds(lt, st.just("a"), int_value),
    st.builds(le, st.just("a"), int_value),
    st.builds(gt, st.just("a"), int_value),
    st.builds(ge, st.just("a"), int_value),
    st.builds(eq, st.just("b"), text_value),
    st.builds(in_, st.just("a"), st.lists(int_value, max_size=4)),
    st.builds(in_, st.just("b"), st.lists(text_value, max_size=3)),
    st.builds(is_null, st.sampled_from(COLUMNS)),
    st.builds(not_null, st.sampled_from(COLUMNS)),
)

predicates = st.recursive(
    leaves,
    lambda inner: st.one_of(
        st.builds(lambda p, q: p & q, inner, inner),
        st.builds(lambda p, q: p | q, inner, inner),
        st.builds(lambda p: ~p, inner),
    ),
    max_leaves=8,
)

batches = st.lists(st.tuples(ints, texts), max_size=40)


@settings(max_examples=200, deadline=None)
@given(predicates, batches)
def test_vectorized_matches_scalar(predicate, rows):
    batch = ColumnBatch(
        COLUMNS, [[r[0] for r in rows], [r[1] for r in rows]]
    )
    mask = predicate.compile_batch(COLUMNS)(batch)
    row_fn = predicate.compile(COLUMNS)
    assert len(mask) == len(rows)
    assert [bool(bit) for bit in mask] == [bool(row_fn(r)) for r in rows]


@settings(max_examples=100, deadline=None)
@given(predicates, batches)
def test_matching_positions_is_the_set_bits(predicate, rows):
    batch = ColumnBatch(
        COLUMNS, [[r[0] for r in rows], [r[1] for r in rows]]
    )
    positions = predicate.matching_positions(batch)
    row_fn = predicate.compile(COLUMNS)
    assert positions == [i for i, r in enumerate(rows) if row_fn(r)]
