"""Composed relational plans — operators chained the way the catalog's
planners chain them, verified against straightforward Python."""

import pytest

from repro.relational import (
    Database,
    count,
    distinct,
    eq,
    ge,
    group_by,
    hash_join,
    integer,
    limit,
    order_by,
    project,
    rename,
    scan,
    select,
    semi_join,
    text,
    union_all,
)


@pytest.fixture()
def db():
    d = Database("plans")
    runs = d.create_table(
        "runs", [integer("run_id"), text("model"), integer("hour")]
    )
    metrics = d.create_table(
        "metrics", [integer("run_id"), text("name"), integer("value")]
    )
    for run_id, model, hour in [
        (1, "arps", 0), (2, "arps", 6), (3, "wrf", 0), (4, "wrf", 12),
    ]:
        runs.insert([run_id, model, hour])
    for run_id, name, value in [
        (1, "cape", 1200), (1, "cin", 40),
        (2, "cape", 2500),
        (3, "cape", 800), (3, "cin", 10),
        (4, "srh", 300),
    ]:
        metrics.insert([run_id, name, value])
    return d


class TestComposedPlans:
    def test_filter_join_group(self, db):
        """Runs with high CAPE, counted per model."""
        high_cape = select(
            scan(db.table("metrics")), eq("name", "cape") & ge("value", 1000)
        )
        joined = hash_join(high_cape, scan(db.table("runs")), on=[("run_id", "run_id")])
        per_model = group_by(joined, ["model"], [count("n")])
        assert dict(per_model.rows) == {"arps": 2}

    def test_semi_join_then_order_limit(self, db):
        with_cin = semi_join(
            scan(db.table("runs")),
            select(scan(db.table("metrics")), eq("name", "cin")),
            on=[("run_id", "run_id")],
        )
        newest_first = order_by(with_cin, ["hour"], descending=True)
        top = limit(newest_first, 1)
        assert top.rows == [(1, "arps", 0)] or top.rows[0][0] in (1, 3)
        assert len(top) == 1

    def test_rename_union_distinct(self, db):
        arps = rename(
            project(select(scan(db.table("runs")), eq("model", "arps")), ["run_id"]),
            {"run_id": "id"},
        )
        wrf = rename(
            project(select(scan(db.table("runs")), eq("model", "wrf")), ["run_id"]),
            {"run_id": "id"},
        )
        combined = distinct(union_all(arps, wrf))
        assert sorted(combined.column_values("id")) == [1, 2, 3, 4]

    def test_plan_matches_naive_python(self, db):
        """The composed pipeline must agree with a dict-based rewrite."""
        joined = hash_join(
            scan(db.table("metrics")), scan(db.table("runs")), on=[("run_id", "run_id")]
        )
        grouped = group_by(joined, ["model", "name"], [count("n")])
        engine_answer = {(m, n): c for m, n, c in grouped.rows}

        runs = {r[0]: r[1] for r in db.table("runs").scan()}
        naive = {}
        for run_id, name, _value in db.table("metrics").scan():
            key = (runs[run_id], name)
            naive[key] = naive.get(key, 0) + 1
        assert engine_answer == naive
