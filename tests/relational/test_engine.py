"""Unit tests for the Database registry."""

import pytest

from repro.relational import Database, TableError, integer, text


@pytest.fixture()
def db():
    d = Database("test")
    t = d.create_table("t1", [integer("x"), text("s")])
    t.insert([1, "abc"])
    return d


class TestDDL:
    def test_create_and_get(self, db):
        assert db.table("t1").name == "t1"

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(TableError):
            db.create_table("t1", [integer("x")])

    def test_unknown_table_raises(self, db):
        with pytest.raises(TableError):
            db.table("zzz")

    def test_drop(self, db):
        db.drop_table("t1")
        assert not db.has_table("t1")

    def test_drop_unknown_raises(self, db):
        with pytest.raises(TableError):
            db.drop_table("zzz")

    def test_temp_tables_get_unique_names(self, db):
        a = db.create_temp_table("tmp", [integer("x")])
        b = db.create_temp_table("tmp", [integer("x")])
        assert a.name != b.name
        assert db.has_table(a.name) and db.has_table(b.name)

    def test_iteration(self, db):
        db.create_table("t2", [integer("y")])
        assert {t.name for t in db} == {"t1", "t2"}


class TestAccounting:
    def test_row_counts(self, db):
        assert db.row_counts() == {"t1": 1}

    def test_total_rows(self, db):
        db.create_table("t2", [integer("y")]).insert_many([[1], [2]])
        assert db.total_rows() == 3

    def test_storage_report_sorted_by_bytes(self, db):
        big = db.create_table("big", [text("s")])
        big.insert(["x" * 1000])
        report = db.storage_report()
        assert report[0][0] == "big"
        assert report[0][2] >= 1000

    def test_estimated_bytes_sums_tables(self, db):
        before = db.estimated_bytes()
        db.table("t1").insert([2, "defg"])
        assert db.estimated_bytes() > before
