"""Unit tests for the compiled predicate language."""

import pytest

from repro.relational import (
    And,
    Not,
    Or,
    TruePredicate,
    eq,
    ge,
    gt,
    in_,
    is_null,
    le,
    lt,
    ne,
    not_null,
)

COLUMNS = ("a", "b", "c")


def run(predicate, row):
    return predicate.compile(COLUMNS)(row)


class TestComparisons:
    def test_eq(self):
        assert run(eq("a", 5), (5, 0, 0))
        assert not run(eq("a", 5), (6, 0, 0))

    def test_ne(self):
        assert run(ne("b", "x"), (0, "y", 0))

    def test_ordering_operators(self):
        row = (10, 0, 0)
        assert run(gt("a", 5), row)
        assert run(ge("a", 10), row)
        assert not run(lt("a", 10), row)
        assert run(le("a", 10), row)

    def test_null_never_matches(self):
        for p in (eq("a", 5), ne("a", 5), lt("a", 5), gt("a", 5)):
            assert not run(p, (None, 0, 0))

    def test_unknown_operator_rejected(self):
        from repro.relational.predicate import Comparison

        with pytest.raises(ValueError):
            Comparison("a", "<>", 1)

    def test_unknown_column_raises_at_compile(self):
        with pytest.raises(ValueError):
            eq("zzz", 1).compile(COLUMNS)


class TestCombinators:
    def test_and_operator(self):
        p = eq("a", 1) & eq("b", 2)
        assert run(p, (1, 2, 0))
        assert not run(p, (1, 3, 0))

    def test_or_operator(self):
        p = eq("a", 1) | eq("a", 2)
        assert run(p, (2, 0, 0))
        assert not run(p, (3, 0, 0))

    def test_not_operator(self):
        assert run(~eq("a", 1), (2, 0, 0))

    def test_nested_and_flattens(self):
        p = And([eq("a", 1) & eq("b", 2), eq("c", 3)])
        assert len(p.parts) == 3

    def test_nested_or_flattens(self):
        p = Or([eq("a", 1) | eq("a", 2), eq("a", 3)])
        assert len(p.parts) == 3

    def test_three_way_and(self):
        p = eq("a", 1) & eq("b", 2) & eq("c", 3)
        assert run(p, (1, 2, 3))
        assert not run(p, (1, 2, 4))


class TestMembershipAndNull:
    def test_in(self):
        p = in_("a", [1, 2, 3])
        assert run(p, (2, 0, 0))
        assert not run(p, (4, 0, 0))

    def test_is_null(self):
        assert run(is_null("a"), (None, 0, 0))
        assert not run(is_null("a"), (1, 0, 0))

    def test_not_null(self):
        assert run(not_null("a"), (1, 0, 0))
        assert not run(not_null("a"), (None, 0, 0))

    def test_true_predicate(self):
        assert run(TruePredicate(), (None, None, None))


class TestSqlRendering:
    def test_comparison_sql_null_guarded(self):
        sql, params = eq("a", 5).to_sql()
        assert sql == "(a IS NOT NULL AND a = ?)"
        assert params == [5]

    def test_and_sql(self):
        sql, params = (eq("a", 1) & ne("b", 2)).to_sql()
        assert sql == "((a IS NOT NULL AND a = ?)) AND ((b IS NOT NULL AND b != ?))"
        assert params == [1, 2]

    def test_in_sql_parameter_count(self):
        sql, params = in_("a", [3, 1, 2]).to_sql()
        assert sql.count("?") == 3
        assert "IS NOT NULL" in sql
        assert sorted(params) == [1, 2, 3]

    def test_null_sql(self):
        assert is_null("a").to_sql() == ("a IS NULL", [])
        assert not_null("a").to_sql() == ("a IS NOT NULL", [])

    def test_not_sql(self):
        sql, _ = (~eq("a", 1)).to_sql()
        assert sql == "NOT ((a IS NOT NULL AND a = ?))"


class TestReferencedColumns:
    def test_collects_all(self):
        p = (eq("a", 1) & eq("b", 2)) | is_null("c")
        assert sorted(set(p.referenced_columns())) == ["a", "b", "c"]
