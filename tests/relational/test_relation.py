"""Unit tests for the relational-algebra operators."""

import pytest

from repro.relational import (
    PlanError,
    Relation,
    Table,
    agg_max,
    agg_min,
    agg_sum,
    anti_join,
    constant_column,
    count,
    count_distinct,
    distinct,
    eq,
    extend,
    ge,
    group_by,
    hash_join,
    integer,
    limit,
    order_by,
    project,
    rename,
    scan,
    select,
    semi_join,
    text,
    union_all,
)


@pytest.fixture()
def orders():
    return Relation(
        ("order_id", "customer", "total"),
        [
            (1, "ann", 10),
            (2, "bob", 25),
            (3, "ann", 5),
            (4, "cat", 25),
        ],
    )


@pytest.fixture()
def customers():
    return Relation(
        ("name", "city"),
        [("ann", "oslo"), ("bob", "rome"), ("dee", "bern")],
    )


class TestBasics:
    def test_scan_materializes_table(self):
        t = Table("t", [integer("x"), text("s")])
        t.insert([1, "a"])
        r = scan(t)
        assert r.columns == ("x", "s")
        assert r.rows == [(1, "a")]

    def test_select(self, orders):
        r = select(orders, ge("total", 20))
        assert len(r) == 2

    def test_project_reorders(self, orders):
        r = project(orders, ["total", "customer"])
        assert r.columns == ("total", "customer")
        assert r.rows[0] == (10, "ann")

    def test_project_unknown_column(self, orders):
        with pytest.raises(PlanError):
            project(orders, ["zzz"])

    def test_rename(self, orders):
        r = rename(orders, {"customer": "who"})
        assert "who" in r.columns and "customer" not in r.columns

    def test_rename_collision_rejected(self, orders):
        with pytest.raises(PlanError):
            rename(orders, {"customer": "total"})

    def test_distinct_preserves_first_order(self):
        r = distinct(Relation(("x",), [(1,), (2,), (1,), (3,)]))
        assert r.rows == [(1,), (2,), (3,)]

    def test_extend_computed_column(self, orders):
        r = extend(orders, "double", lambda row: row[2] * 2)
        assert r.rows[0][-1] == 20

    def test_constant_column(self, orders):
        r = constant_column(orders, "tag", "T")
        assert all(row[-1] == "T" for row in r.rows)

    def test_union_all(self, orders):
        r = union_all(orders, orders)
        assert len(r) == 8

    def test_union_all_incompatible(self, orders, customers):
        with pytest.raises(PlanError):
            union_all(orders, customers)

    def test_order_by(self, orders):
        r = order_by(orders, ["total", "order_id"])
        assert [row[0] for row in r.rows] == [3, 1, 2, 4]

    def test_order_by_descending(self, orders):
        r = order_by(orders, ["order_id"], descending=True)
        assert [row[0] for row in r.rows] == [4, 3, 2, 1]

    def test_limit(self, orders):
        assert len(limit(orders, 2)) == 2

    def test_to_dicts(self, orders):
        assert orders.to_dicts()[0] == {"order_id": 1, "customer": "ann", "total": 10}

    def test_column_values(self, orders):
        assert orders.column_values("customer") == ["ann", "bob", "ann", "cat"]


class TestJoins:
    def test_hash_join_inner_semantics(self, orders, customers):
        r = hash_join(orders, customers, on=[("customer", "name")])
        assert len(r) == 3  # cat has no customer row, dee no orders
        assert r.columns == ("order_id", "customer", "total", "city")

    def test_hash_join_multiplicity(self):
        left = Relation(("k",), [(1,), (1,)])
        right = Relation(("k", "v"), [(1, "a"), (1, "b")])
        r = hash_join(left, right, on=[("k", "k")])
        assert len(r) == 4

    def test_hash_join_null_keys_never_match(self):
        left = Relation(("k",), [(None,)])
        right = Relation(("k", "v"), [(None, "x")])
        assert len(hash_join(left, right, on=[("k", "k")])) == 0

    def test_hash_join_build_side_symmetry(self):
        # Results must not depend on which input is smaller.
        small = Relation(("k", "a"), [(1, "x")])
        big = Relation(("k", "b"), [(1, "p"), (2, "q"), (1, "r")])
        r1 = hash_join(small, big, on=[("k", "k")])
        r2 = hash_join(big, small, on=[("k", "k")])
        assert len(r1) == len(r2) == 2

    def test_hash_join_column_collision_needs_prefix(self):
        left = Relation(("k", "v"), [(1, "a")])
        right = Relation(("k", "v"), [(1, "b")])
        with pytest.raises(PlanError):
            hash_join(left, right, on=[("k", "k")])
        r = hash_join(left, right, on=[("k", "k")], right_prefix="r_")
        assert r.columns == ("k", "v", "r_v")

    def test_multi_key_join(self):
        left = Relation(("a", "b"), [(1, 2), (1, 3)])
        right = Relation(("a", "b", "v"), [(1, 2, "hit"), (1, 9, "miss")])
        r = hash_join(left, right, on=[("a", "a"), ("b", "b")])
        assert r.rows == [(1, 2, "hit")]

    def test_semi_join(self, orders, customers):
        r = semi_join(orders, customers, on=[("customer", "name")])
        assert {row[1] for row in r.rows} == {"ann", "bob"}
        assert r.columns == orders.columns

    def test_anti_join(self, orders, customers):
        r = anti_join(orders, customers, on=[("customer", "name")])
        assert {row[1] for row in r.rows} == {"cat"}


class TestGroupBy:
    def test_count_per_group(self, orders):
        r = group_by(orders, ["customer"], [count("n")])
        assert dict(r.rows) == {"ann": 2, "bob": 1, "cat": 1}

    def test_sum_min_max(self, orders):
        r = group_by(
            orders,
            ["customer"],
            [agg_sum("total", "s"), agg_min("total", "lo"), agg_max("total", "hi")],
        )
        by_customer = {row[0]: row[1:] for row in r.rows}
        assert by_customer["ann"] == (15, 5, 10)

    def test_count_distinct(self):
        r = Relation(("k", "v"), [(1, "a"), (1, "a"), (1, "b")])
        g = group_by(r, ["k"], [count_distinct("v", "nv")])
        assert g.rows == [(1, 2)]

    def test_global_aggregate_on_empty_input(self):
        r = Relation(("x",), [])
        g = group_by(r, [], [count("n"), agg_max("x", "mx")])
        assert g.rows == [(0, None)]

    def test_grouped_aggregate_on_empty_input(self):
        r = Relation(("k", "x"), [])
        g = group_by(r, ["k"], [count("n")])
        assert g.rows == []

    def test_nulls_ignored_by_aggregates(self):
        r = Relation(("k", "v"), [(1, None), (1, 5)])
        g = group_by(r, ["k"], [agg_sum("v", "s"), agg_min("v", "lo")])
        assert g.rows == [(1, 5, 5)]

    def test_count_counts_rows_including_null_values(self):
        r = Relation(("k", "v"), [(1, None), (1, 5)])
        g = group_by(r, ["k"], [count("n")])
        assert g.rows == [(1, 2)]

    def test_unknown_aggregate_kind(self):
        from repro.relational.relation import Aggregate

        with pytest.raises(PlanError):
            Aggregate("median", "x", "m")

    def test_non_count_requires_column(self):
        from repro.relational.relation import Aggregate

        with pytest.raises(PlanError):
            Aggregate("sum", None, "s")
