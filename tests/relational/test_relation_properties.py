"""Property-based tests: operators agree with naive reference semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Relation,
    agg_max,
    agg_sum,
    anti_join,
    count,
    distinct,
    group_by,
    hash_join,
    semi_join,
)

keys = st.integers(min_value=0, max_value=5)
values = st.integers(min_value=-10, max_value=10)
rows = st.lists(st.tuples(keys, values), max_size=30)


@settings(max_examples=100, deadline=None)
@given(rows, rows)
def test_hash_join_matches_nested_loop(left_rows, right_rows):
    left = Relation(("k", "lv"), left_rows)
    right = Relation(("k", "rv"), right_rows)
    joined = hash_join(left, right, on=[("k", "k")])
    expected = sorted(
        (lk, lv, rv)
        for (lk, lv) in left_rows
        for (rk, rv) in right_rows
        if lk == rk
    )
    assert sorted(joined.rows) == expected


@settings(max_examples=100, deadline=None)
@given(rows, rows)
def test_semi_and_anti_join_partition_left(left_rows, right_rows):
    left = Relation(("k", "lv"), left_rows)
    right = Relation(("k", "rv"), right_rows)
    semi = semi_join(left, right, on=[("k", "k")])
    anti = anti_join(left, right, on=[("k", "k")])
    assert sorted(semi.rows + anti.rows) == sorted(left_rows)
    right_keys = {k for k, _ in right_rows}
    assert all(k in right_keys for k, _ in semi.rows)
    assert all(k not in right_keys for k, _ in anti.rows)


@settings(max_examples=100, deadline=None)
@given(rows)
def test_group_by_matches_manual_aggregation(data):
    relation = Relation(("k", "v"), data)
    grouped = group_by(relation, ["k"], [count("n"), agg_sum("v", "s"), agg_max("v", "mx")])
    expected = {}
    for k, v in data:
        n, s, mx = expected.get(k, (0, 0, None))
        expected[k] = (n + 1, s + v, v if mx is None or v > mx else mx)
    assert {row[0]: row[1:] for row in grouped.rows} == expected


@settings(max_examples=100, deadline=None)
@given(rows)
def test_distinct_is_idempotent_and_set_equal(data):
    relation = Relation(("k", "v"), data)
    once = distinct(relation)
    twice = distinct(once)
    assert once.rows == twice.rows
    assert set(once.rows) == set(data)
    assert len(once.rows) == len(set(data))
