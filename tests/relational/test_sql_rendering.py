"""Property: predicate SQL rendering agrees with compiled evaluation.

Every predicate AST can both compile to a Python closure and render to
a parameterized SQL fragment.  Random predicates are evaluated both
ways — closure over in-memory rows, and ``WHERE`` clause in sqlite over
the same rows — and must select identical row sets.
"""

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    And,
    Not,
    Or,
    TruePredicate,
    eq,
    ge,
    gt,
    in_,
    is_null,
    le,
    lt,
    ne,
    not_null,
)

COLUMNS = ("a", "b", "s")

values_a = st.one_of(st.none(), st.integers(-5, 5))
values_b = st.one_of(st.none(), st.integers(-5, 5))
values_s = st.one_of(st.none(), st.sampled_from(["x", "y", "zz", ""]))
rows = st.lists(st.tuples(values_a, values_b, values_s), min_size=0, max_size=25)


def comparisons():
    int_ops = st.sampled_from([eq, ne, lt, le, gt, ge])
    return st.one_of(
        st.builds(lambda op, v: op("a", v), int_ops, st.integers(-5, 5)),
        st.builds(lambda op, v: op("b", v), int_ops, st.integers(-5, 5)),
        st.builds(lambda v: eq("s", v), st.sampled_from(["x", "y", "zz", ""])),
        st.builds(lambda vs: in_("a", vs), st.lists(st.integers(-5, 5), min_size=1, max_size=4)),
        st.builds(lambda vs: in_("s", vs), st.lists(st.sampled_from(["x", "y"]), min_size=1, max_size=2)),
        st.sampled_from([is_null("a"), not_null("b"), is_null("s"), TruePredicate()]),
    )


def predicates(depth: int = 2):
    if depth == 0:
        return comparisons()
    inner = st.deferred(lambda: predicates(depth - 1))
    return st.one_of(
        comparisons(),
        st.builds(lambda l, r: And([l, r]), inner, inner),
        st.builds(lambda l, r: Or([l, r]), inner, inner),
        st.builds(Not, inner),
    )


@settings(max_examples=200, deadline=None)
@given(predicates(), rows)
def test_sql_rendering_matches_compiled(predicate, data):
    fn = predicate.compile(COLUMNS)
    expected = [row for row in data if fn(row)]

    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (a INTEGER, b INTEGER, s TEXT)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?)", data)
    sql, params = predicate.to_sql()
    actual = connection.execute(f"SELECT a, b, s FROM t WHERE {sql}", params).fetchall()
    connection.close()

    assert sorted(actual, key=repr) == sorted(expected, key=repr)
