"""Unit tests for columnar tables and indexes."""

import sys

import pytest

from repro.relational import (
    ConstraintError,
    Table,
    TableError,
    eq,
    integer,
    real,
    text,
)


@pytest.fixture()
def people():
    t = Table(
        "people",
        [integer("id", nullable=False), text("name"), real("age")],
        primary_key=["id"],
    )
    t.insert([1, "ann", 30.0])
    t.insert([2, "bob", 40.0])
    t.insert([3, "cat", 30.0])
    return t


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableError):
            Table("t", [integer("x"), text("x")])

    def test_empty_columns_rejected(self):
        with pytest.raises(TableError):
            Table("t", [])

    def test_position_lookup(self, people):
        assert people.position("name") == 1

    def test_unknown_column_raises(self, people):
        with pytest.raises(TableError):
            people.position("zzz")

    def test_ddl(self, people):
        ddl = people.ddl()
        assert ddl.startswith("CREATE TABLE people (")
        assert "PRIMARY KEY (id)" in ddl


class TestInsert:
    def test_insert_returns_rowids(self):
        t = Table("t", [integer("x")])
        assert t.insert([1]) == 0
        assert t.insert([2]) == 1

    def test_wrong_arity_rejected(self, people):
        with pytest.raises(TableError):
            people.insert([4, "dee"])

    def test_type_validation_applied(self, people):
        with pytest.raises(TypeError):
            people.insert(["x", "dee", 1.0])

    def test_insert_dict_fills_nulls(self, people):
        people.insert_dict(id=4, name="dee")
        assert people.lookup(["id"], [4])[0][2] is None

    def test_insert_many_counts(self):
        t = Table("t", [integer("x")])
        assert t.insert_many([[i] for i in range(5)]) == 5
        assert len(t) == 5

    def test_primary_key_enforced(self, people):
        with pytest.raises(ConstraintError):
            people.insert([1, "dup", None])

    def test_failed_insert_leaves_table_unchanged(self, people):
        before = len(people)
        with pytest.raises(ConstraintError):
            people.insert([2, "dup", None])
        assert len(people) == before
        assert len(people.lookup(["id"], [2])) == 1

    def test_real_column_coerces_int(self, people):
        people.insert([4, "dee", 25])
        assert people.lookup(["id"], [4])[0][2] == 25.0


class TestIndexes:
    def test_hash_index_lookup(self, people):
        people.create_index("by_age", ["age"])
        rows = people.lookup(["age"], [30.0])
        assert {r[1] for r in rows} == {"ann", "cat"}

    def test_index_backfills_existing_rows(self, people):
        index = people.create_index("by_name", ["name"])
        assert index.lookup(("bob",)) != []

    def test_lookup_without_index_scans(self, people):
        rows = people.lookup(["name"], ["bob"])
        assert rows[0][0] == 2

    def test_unique_index_rejects_duplicates(self, people):
        with pytest.raises(ConstraintError):
            people.create_index("uniq_age", ["age"], unique=True)

    def test_index_maintained_on_insert(self, people):
        people.create_index("by_age", ["age"])
        people.insert([4, "dee", 50.0])
        assert len(people.lookup(["age"], [50.0])) == 1

    def test_sorted_index_range(self, people):
        people.create_sorted_index("age_sorted", "age")
        index = people.find_sorted_index("age")
        rowids = index.range(low=30.0, high=35.0)
        assert len(rowids) == 2

    def test_sorted_index_open_ranges(self, people):
        index = people.create_sorted_index("age_sorted", "age")
        assert len(index.range(low=31.0)) == 1
        assert len(index.range(high=31.0)) == 2
        assert len(index.range()) == 3

    def test_sorted_index_exclusive_bounds(self, people):
        index = people.create_sorted_index("age_sorted", "age")
        assert len(index.range(low=30.0, low_inclusive=False)) == 1

    def test_sorted_index_skips_nulls(self):
        t = Table("t", [integer("x")])
        t.insert([None])
        t.insert([5])
        index = t.create_sorted_index("by_x", "x")
        assert index.range() == [1]

    def test_sorted_index_duplicate_keys(self):
        t = Table("t", [integer("x")])
        for x in (7, 7, 7, 3, 9):
            t.insert([x])
        index = t.create_sorted_index("by_x", "x")
        # All three duplicates fall inside a closed [7, 7] range...
        assert sorted(index.range(low=7, high=7)) == [0, 1, 2]
        # ...and an exclusive bound excludes the whole duplicate run,
        # not just its first entry.
        assert index.range(low=7, high=9, low_inclusive=False) == [4]
        assert sorted(index.range(low=3, high=7, high_inclusive=False)) == [3]

    def test_sorted_index_range_excludes_tombstones(self):
        t = Table("t", [integer("id"), integer("x")], primary_key=["id"])
        for i in range(6):
            t.insert([i, 10 * i])
        index = t.create_sorted_index("by_x", "x")
        t.delete_where(eq("x", 20))
        rowids = index.range(low=0, high=50)
        assert 2 not in rowids
        assert sorted(rowids) == [0, 1, 3, 4, 5]
        # Boundary rows next to the tombstone survive untouched.
        assert sorted(index.range(low=10, high=30)) == [1, 3]


class TestDelete:
    def test_delete_where(self, people):
        deleted = people.delete_where(eq("age", 30.0))
        assert deleted == 2
        assert len(people) == 1

    def test_delete_updates_indexes(self, people):
        people.create_index("by_age", ["age"])
        people.delete_where(eq("id", 1))
        assert {r[1] for r in people.lookup(["age"], [30.0])} == {"cat"}

    def test_deleted_rows_not_scanned(self, people):
        people.delete_where(eq("id", 2))
        assert [r[0] for r in people.scan()] == [1, 3]

    def test_fetch_deleted_row_raises(self, people):
        people.delete_where(eq("id", 1))
        with pytest.raises(TableError):
            people.fetch(0)

    def test_clear(self, people):
        people.create_index("by_age", ["age"])
        people.clear()
        assert len(people) == 0
        assert people.lookup(["age"], [30.0]) == []

    def test_bulk_delete_single_pass(self):
        # Regression: delete_where must tombstone every match in one
        # pass, keeping hash and sorted indexes consistent even when
        # the predicate hits a large, interleaved set of rows.
        t = Table("t", [integer("id"), text("kind"), real("w")],
                  primary_key=["id"])
        t.create_index("by_kind", ["kind"])
        sorted_index = t.create_sorted_index("by_w", "w")
        for i in range(200):
            t.insert([i, "even" if i % 2 == 0 else "odd", float(i)])
        deleted = t.delete_where(eq("kind", "even"))
        assert deleted == 100
        assert len(t) == 100
        assert t.lookup(["kind"], ["even"]) == []
        assert len(t.lookup(["kind"], ["odd"])) == 100
        assert len(sorted_index.range(low=0.0, high=199.0)) == 100
        assert all(r[0] % 2 == 1 for r in t.scan())

    def test_reinsert_pk_after_delete(self, people):
        people.delete_where(eq("id", 1))
        people.insert([1, "ann2", 31.0])
        assert people.lookup(["id"], [1])[0][1] == "ann2"


class TestAccounting:
    def test_estimated_bytes_positive(self, people):
        assert people.estimated_bytes() > 0

    def test_estimated_bytes_counts_strings(self):
        t = Table("t", [text("s")])
        t.insert(["abcd"])
        breakdown = t.storage_breakdown()
        # Columnar accounting: the string column carries the list's own
        # footprint plus 4 payload bytes; the validity bitmap is listed
        # separately.
        assert breakdown["s"] == sys.getsizeof(t.column_data("s")) + 4
        assert breakdown["<validity>"] == sys.getsizeof(t.validity())
        assert t.estimated_bytes() == sum(breakdown.values())

    def test_storage_breakdown_grows_with_payload(self):
        t = Table("t", [text("s")])
        t.insert(["x" * 100])
        small = t.storage_breakdown()["s"]
        t.insert(["y" * 1000])
        assert t.storage_breakdown()["s"] >= small + 1000

    def test_tombstoned_rows_free_payload_bytes(self):
        t = Table("t", [integer("id"), text("s")], primary_key=["id"])
        for i in range(10):
            t.insert([i, "z" * 500])
        before = t.estimated_bytes()
        t.delete_where(eq("id", 3))
        # The slot pointer survives (tombstone), the payload does not.
        assert t.estimated_bytes() <= before - 500
