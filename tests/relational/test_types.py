"""Unit tests for column types and validation."""

import pytest

from repro.relational import Column, ColumnType, clob, integer, real, text


class TestColumnType:
    def test_integer_accepts_int(self):
        assert ColumnType.INTEGER.validate(5) == 5

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeError):
            ColumnType.INTEGER.validate(True)

    def test_integer_rejects_float(self):
        with pytest.raises(TypeError):
            ColumnType.INTEGER.validate(1.5)

    def test_real_coerces_int_to_float(self):
        value = ColumnType.REAL.validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_real_rejects_string(self):
        with pytest.raises(TypeError):
            ColumnType.REAL.validate("3.0")

    def test_text_accepts_str(self):
        assert ColumnType.TEXT.validate("hi") == "hi"

    def test_text_rejects_int(self):
        with pytest.raises(TypeError):
            ColumnType.TEXT.validate(7)

    def test_null_passes_every_type(self):
        for t in ColumnType:
            assert t.validate(None) is None

    def test_clob_renders_as_sql_text(self):
        assert ColumnType.CLOB.sql_name == "TEXT"


class TestColumn:
    def test_not_null_enforced(self):
        with pytest.raises(TypeError, match="NOT NULL"):
            integer("id", nullable=False).validate(None)

    def test_nullable_accepts_none(self):
        assert integer("id").validate(None) is None

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Column("bad name", ColumnType.TEXT)
        with pytest.raises(ValueError):
            Column("", ColumnType.TEXT)

    def test_underscore_names_allowed(self):
        assert Column("value_num", ColumnType.REAL).name == "value_num"

    def test_ddl_rendering(self):
        assert integer("id", nullable=False).ddl() == "id INTEGER NOT NULL"
        assert text("name").ddl() == "name TEXT"
        assert real("score").ddl() == "score REAL"
        assert clob("content").ddl() == "content TEXT"
