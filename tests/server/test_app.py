"""End-to-end tests for the threaded catalog HTTP server.

Every test runs a real ``CatalogServer`` on an ephemeral port and
drives it through ``CatalogClient`` (stdlib ``http.client``), so the
full stack — routing, auth, rate limiting, the service facade, the
store — is exercised over actual sockets.
"""

import threading

import pytest

from repro.core import AttributeCriteria, HybridCatalog, ObjectQuery
from repro.core.integrity import check_catalog
from repro.grid import FIG3_DOCUMENT, MyLeadService, lead_schema
from repro.obs import EventLog, MetricsRegistry, read_events
from repro.server import CatalogClient, CatalogServer, ServerConfig


def theme_query():
    return ObjectQuery().add_attribute(AttributeCriteria("theme"))


def make_service(registry=None, events=None):
    registry = registry if registry is not None else MetricsRegistry()
    catalog = HybridCatalog(lead_schema(), metrics=registry, events=events)
    return MyLeadService(lead_schema(), catalog)


@pytest.fixture()
def server():
    service = make_service()
    srv = CatalogServer(service, ServerConfig())
    srv.start()
    yield service, srv
    srv.close()


def logged_in_client(srv, user="ann"):
    client = CatalogClient(srv.host, srv.port)
    status, _ = client.create_user(user)
    assert status == 201
    client.open_session(user)
    return client


class TestPlumbing:
    def test_health(self, server):
        _service, srv = server
        with CatalogClient(srv.host, srv.port) as client:
            status, body = client.health()
        assert status == 200
        assert body["status"] == "ok"

    def test_unknown_route_404(self, server):
        _service, srv = server
        with CatalogClient(srv.host, srv.port) as client:
            status, body = client.json("GET", "/v1/nope")
        assert status == 404
        assert "no route" in body["error"]

    def test_invalid_json_body_400(self, server):
        _service, srv = server
        client = logged_in_client(srv)
        with client:
            conn = client._conn
            headers = {"Authorization": f"Bearer {client.token}",
                       "Content-Length": "9"}
            conn.request("POST", "/v1/query", body=b"not json!",
                         headers=headers)
            response = conn.getresponse()
            response.read()
        assert response.status == 400

    def test_metrics_endpoint_exposes_server_series(self, server):
        _service, srv = server
        with CatalogClient(srv.host, srv.port) as client:
            client.health()
            text = client.metrics_text()
        assert "server_requests_total" in text
        assert 'endpoint="health"' in text


class TestAuth:
    def test_missing_token_401(self, server):
        _service, srv = server
        with CatalogClient(srv.host, srv.port) as client:
            status, body = client.create_experiment("e1")
        assert status == 401
        assert "session" in body["error"]

    def test_garbage_token_401(self, server):
        _service, srv = server
        with CatalogClient(srv.host, srv.port, token="f" * 32) as client:
            status, _ = client.query(theme_query())
        assert status == 401

    def test_session_for_unknown_user_404(self, server):
        _service, srv = server
        with CatalogClient(srv.host, srv.port) as client:
            status, body = client.json(
                "POST", "/v1/sessions", {"user": "ghost"}
            )
        assert status == 404

    def test_closed_session_stops_working(self, server):
        _service, srv = server
        client = logged_in_client(srv)
        with client:
            token = client.token
            status, body = client.close_session()
            assert status == 200 and body["closed"] is True
            client.token = token
            status, _ = client.create_experiment("e1")
        assert status == 401

    def test_duplicate_user_409(self, server):
        _service, srv = server
        with CatalogClient(srv.host, srv.port) as client:
            assert client.create_user("ann")[0] == 201
            assert client.create_user("ann")[0] == 409

    def test_auth_failures_counted(self, server):
        service, srv = server
        registry = service.catalog.metrics
        before = registry.counter("server_auth_failures_total").value
        with CatalogClient(srv.host, srv.port) as client:
            client.query(theme_query())
        assert registry.counter("server_auth_failures_total").value == before + 1


class TestCatalogRoundTrip:
    def test_ingest_query_fetch(self, server):
        service, srv = server
        client = logged_in_client(srv)
        with client:
            status, exp = client.create_experiment("run-1")
            assert status == 201
            status, receipt = client.add_file(
                exp["experiment_id"], FIG3_DOCUMENT, name="fig3"
            )
            assert status == 201
            assert receipt["element_count"] > 0
            object_id = receipt["object_id"]
            status, result = client.query(theme_query())
            assert status == 200
            assert result["ids"] == [object_id]
            status, fetched = client.fetch([object_id])
            assert status == 200
            assert fetched["documents"][str(object_id)] == \
                service.catalog.fetch([object_id])[object_id]
            status, listing = client.json("GET", "/v1/experiments")
            assert status == 200
            assert listing["experiments"][0]["files"] == 1

    def test_visibility_enforced_over_http(self, server):
        _service, srv = server
        ann = logged_in_client(srv, "ann")
        with ann:
            _, exp = ann.create_experiment("e1")
            _, receipt = ann.add_file(exp["experiment_id"], FIG3_DOCUMENT)
            object_id = receipt["object_id"]
        bob = logged_in_client(srv, "bob")
        with bob:
            status, body = bob.fetch([object_id])
            assert status == 403
            assert "not visible" in body["error"]
            status, result = bob.query(theme_query())
            assert status == 200 and result["ids"] == []

    def test_foreign_experiment_403(self, server):
        _service, srv = server
        ann = logged_in_client(srv, "ann")
        with ann:
            _, exp = ann.create_experiment("e1")
        bob = logged_in_client(srv, "bob")
        with bob:
            status, body = bob.add_file(exp["experiment_id"], FIG3_DOCUMENT)
        assert status == 403
        assert "belongs to" in body["error"]

    def test_publish_unpublish_and_derivations(self, server):
        _service, srv = server
        ann = logged_in_client(srv, "ann")
        with ann:
            _, exp = ann.create_experiment("e1")
            _, a = ann.add_file(exp["experiment_id"], FIG3_DOCUMENT, name="a")
            _, b = ann.add_file(exp["experiment_id"], FIG3_DOCUMENT, name="b")
            assert ann.publish(a["object_id"])[0] == 200
            status, _ = ann.json("POST", "/v1/derivations", {
                "derived_id": b["object_id"], "source_id": a["object_id"],
            })
            assert status == 200
            # A cycle through the chain is a 400, not a 5xx.
            status, body = ann.json("POST", "/v1/derivations", {
                "derived_id": a["object_id"], "source_id": b["object_id"],
            })
            assert status == 400
            assert "cycle" in body["error"]
            assert ann.unpublish(a["object_id"])[0] == 200


class TestStreamingSearch:
    def _seed(self, srv, count=5):
        client = logged_in_client(srv, "ann")
        _, exp = client.create_experiment("e1")
        ids = []
        for i in range(count):
            _, receipt = client.add_file(
                exp["experiment_id"], FIG3_DOCUMENT, name=f"f{i}"
            )
            ids.append(receipt["object_id"])
        return client, ids

    def test_stream_is_byte_identical_to_in_process_search(self, server):
        service, srv = server
        client, _ids = self._seed(srv)
        with client:
            page = client.search(theme_query())
        expected = service.search("ann", theme_query())
        assert page.body == "".join(expected)
        assert page.total == len(expected)

    def test_pagination_slices_the_same_stream(self, server):
        service, srv = server
        client, ids = self._seed(srv, count=5)
        expected = service.search("ann", theme_query())
        with client:
            first = client.search(theme_query(), offset=0, limit=2)
            second = client.search(theme_query(), offset=2, limit=2)
            tail = client.search(theme_query(), offset=4)
        assert first.total == second.total == tail.total == 5
        assert first.ids == ids[0:2]
        assert second.ids == ids[2:4]
        assert tail.ids == ids[4:]
        assert first.body + second.body + tail.body == "".join(expected)

    def test_offset_past_end_is_empty_not_error(self, server):
        _service, srv = server
        client, _ids = self._seed(srv, count=2)
        with client:
            page = client.search(theme_query(), offset=10)
        assert page.total == 2
        assert page.ids == [] and page.body == ""

    def test_negative_offset_400(self, server):
        _service, srv = server
        client, _ids = self._seed(srv, count=1)
        with client:
            status, _headers, _data = client.request(
                "POST", "/v1/search",
                {"query": {"attrs": [{"name": "theme"}]}, "offset": -1},
            )
        assert status == 400

    def test_streamed_objects_counted(self, server):
        service, srv = server
        client, ids = self._seed(srv, count=3)
        counter = service.catalog.metrics.counter(
            "server_streamed_objects_total"
        )
        before = counter.value
        with client:
            client.search(theme_query())
        assert counter.value == before + len(ids)


class TestRateLimit:
    def test_429_after_burst(self):
        service = make_service()
        srv = CatalogServer(
            service, ServerConfig(rate_limit=1.0, burst=3)
        )
        srv.start()
        try:
            client = logged_in_client(srv, "ann")
            with client:
                statuses = [
                    client.query(theme_query())[0] for _ in range(5)
                ]
            assert 429 in statuses
            assert statuses[0] == 200
            limited = service.catalog.metrics.counter(
                "server_rate_limited_total"
            )
            assert limited.value >= 1
        finally:
            srv.close()


class TestSlowRequestEvents:
    def test_slow_request_lands_in_event_log(self, tmp_path):
        log_path = tmp_path / "server.events.jsonl"
        events = EventLog(log_path)
        service = make_service(events=events)
        srv = CatalogServer(
            service, ServerConfig(slow_request_threshold=0.0)
        )
        srv.start()
        try:
            client = logged_in_client(srv, "ann")
            with client:
                client.query(theme_query())
        finally:
            srv.close()
            events.close()
        records = [
            r for r in read_events(log_path) if r["event"] == "slow_request"
        ]
        assert records, "no slow_request event written"
        fields = records[-1]["fields"]
        assert fields["endpoint"] == "query"
        assert fields["user"] == "ann"
        assert fields["status"] == 200
        assert fields["seconds"] > 0.0


class TestClientStorm:
    THREADS = 16
    ROUNDS = 4

    def test_storm_no_5xx_consistent_catalog_exact_ops(self):
        """The acceptance bar: a 16-thread mixed storm finishes with
        zero 5xx, an fsck-clean catalog, and ``service_ops_total``
        exactly equal to the number of op-mapped requests issued."""
        service = make_service()
        srv = CatalogServer(service, ServerConfig())
        srv.start()
        statuses = []
        statuses_lock = threading.Lock()
        op_requests = [0] * self.THREADS
        errors = []

        def worker(i):
            user = f"user-{i}"
            local = []
            try:
                with CatalogClient(srv.host, srv.port) as client:
                    local.append(client.create_user(user)[0])
                    op_requests[i] += 1  # create_user
                    client.open_session(user)  # sessions: not a service op
                    status, exp = client.create_experiment(f"exp-{i}")
                    local.append(status)
                    op_requests[i] += 1  # create_experiment
                    for r in range(self.ROUNDS):
                        status, receipt = client.add_file(
                            exp["experiment_id"], FIG3_DOCUMENT,
                            name=f"{user}-{r}",
                        )
                        local.append(status)
                        object_id = receipt["object_id"]
                        local.append(client.publish(object_id)[0])
                        status, result = client.query(theme_query())
                        local.append(status)
                        assert object_id in result["ids"]
                        local.append(client.fetch([object_id])[0])
                        op_requests[i] += 4  # add_file/publish/query/fetch
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            with statuses_lock:
                statuses.extend(local)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        srv.close()

        assert errors == []
        assert all(status < 500 for status in statuses), statuses
        assert all(status in (200, 201) for status in statuses), statuses
        assert check_catalog(service.catalog) == []
        ops = service.catalog.metrics.get("service_ops_total")
        total_ops = sum(metric.value for _labels, metric in ops.series())
        assert total_ops == sum(op_requests)
