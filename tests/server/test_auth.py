"""Session manager unit tests (injectable clock, no sleeping)."""

import pytest

from repro.server import SessionManager


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSessions:
    def test_open_resolve_close(self):
        sessions = SessionManager()
        token = sessions.open("ann")
        assert sessions.resolve(token) == "ann"
        assert sessions.active() == 1
        assert sessions.close(token) is True
        assert sessions.resolve(token) is None
        assert sessions.close(token) is False
        assert sessions.active() == 0

    def test_tokens_are_unique_and_opaque(self):
        sessions = SessionManager()
        tokens = {sessions.open("ann") for _ in range(50)}
        assert len(tokens) == 50
        assert all(len(t) == 32 for t in tokens)
        assert "ann" not in "".join(tokens)

    def test_unknown_and_empty_tokens_resolve_to_none(self):
        sessions = SessionManager()
        assert sessions.resolve("deadbeef") is None
        assert sessions.resolve(None) is None
        assert sessions.resolve("") is None

    def test_idle_expiry(self):
        clock = FakeClock()
        sessions = SessionManager(ttl=60.0, clock=clock)
        token = sessions.open("ann")
        clock.advance(59.0)
        assert sessions.resolve(token) == "ann"
        # Resolving refreshed the idle timer.
        clock.advance(59.0)
        assert sessions.resolve(token) == "ann"
        clock.advance(61.0)
        assert sessions.resolve(token) is None
        assert sessions.active() == 0

    def test_on_change_tracks_count(self):
        counts = []
        clock = FakeClock()
        sessions = SessionManager(
            ttl=10.0, clock=clock, on_change=counts.append
        )
        a = sessions.open("ann")
        b = sessions.open("bob")
        sessions.close(a)
        clock.advance(11.0)
        sessions.resolve(b)  # expires
        assert counts == [1, 2, 1, 0]

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError):
            SessionManager(ttl=0)
