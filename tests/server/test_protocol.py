"""JSON wire-format round trips for the query protocol."""

import pytest

from repro.core import AttributeCriteria, ObjectQuery, Op
from repro.errors import CatalogError
from repro.server import query_from_payload, query_to_payload


def fig3_style_query():
    grid = AttributeCriteria("grid", "ARPS")
    grid.add_element("dx", None, 1000.0, Op.EQ)
    stretch = AttributeCriteria("stretching", "ARPS")
    stretch.add_element("dzmin", None, 100.0, Op.GE)
    grid.add_attribute(stretch)
    return ObjectQuery().add_attribute(grid)


def _flatten(query):
    out = []
    for attr in query.attributes:
        out.append((attr.name, attr.source))
        for elem in attr.elements:
            out.append((elem.name, elem.source, elem.op, elem.value))
        for sub in attr.sub_attributes:
            out.append(("sub", sub.name, sub.source))
            for elem in sub.elements:
                out.append((elem.name, elem.source, elem.op, elem.value))
    return out


class TestRoundTrip:
    def test_query_survives_the_wire(self):
        query = fig3_style_query()
        rebuilt = query_from_payload(query_to_payload(query))
        assert _flatten(rebuilt) == _flatten(query)

    def test_all_operators_round_trip(self):
        attr = AttributeCriteria("grid", "ARPS")
        for op in (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE, Op.CONTAINS):
            attr.add_element("dx", None, 1, op)
        attr.add_element("dz", None, {1, 2, 3}, Op.IN_SET)
        query = ObjectQuery().add_attribute(attr)
        rebuilt = query_from_payload(query_to_payload(query))
        ops = [e.op for a in rebuilt.attributes for e in a.elements]
        assert ops == [Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE,
                       Op.CONTAINS, Op.IN_SET]
        assert rebuilt.attributes[0].elements[-1].value == {1, 2, 3}

    def test_elem_source_inherits_attribute_source(self):
        query = query_from_payload(
            {"attrs": [{"name": "grid", "source": "ARPS",
                        "elems": [{"name": "dx", "op": "=", "value": 1}]}]}
        )
        assert query.attributes[0].elements[0].source == "ARPS"


class TestRejection:
    @pytest.mark.parametrize("payload", [
        None,
        [],
        {},
        {"attrs": []},
        {"attrs": "grid"},
        {"attrs": [{"source": "ARPS"}]},
        {"attrs": [{"name": ""}]},
        {"attrs": [{"name": "grid", "elems": "nope"}]},
        {"attrs": [{"name": "grid", "elems": [{"op": "="}]}]},
        {"attrs": [{"name": "grid",
                    "elems": [{"name": "dx", "op": "~", "value": 1}]}]},
        {"attrs": [{"name": "grid",
                    "elems": [{"name": "dx", "op": "in", "value": 7}]}]},
        {"attrs": [{"name": "grid",
                    "subs": [{"name": "a", "subs": [{"name": "b"}]}]}]},
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(CatalogError, match="bad query payload"):
            query_from_payload(payload)
