"""Token-bucket rate limiter unit tests (injectable clock)."""

import pytest

from repro.server import RateLimiter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRateLimiter:
    def test_unlimited_by_default(self):
        limiter = RateLimiter(None)
        assert all(limiter.allow("ann") for _ in range(10_000))

    def test_burst_then_refusal(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=5, clock=clock)
        assert [limiter.allow("ann") for _ in range(6)] == [True] * 5 + [False]

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=2, clock=clock)
        assert limiter.allow("ann")
        assert limiter.allow("ann")
        assert not limiter.allow("ann")
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert limiter.allow("ann")
        assert not limiter.allow("ann")

    def test_users_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.allow("ann")
        assert not limiter.allow("ann")
        assert limiter.allow("bob")

    def test_bucket_never_exceeds_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=10.0, burst=3, clock=clock)
        clock.advance(100.0)  # a long idle period must not bank tokens
        allowed = sum(limiter.allow("ann") for _ in range(10))
        assert allowed == 3

    def test_reset(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.allow("ann")
        assert not limiter.allow("ann")
        limiter.reset("ann")
        assert limiter.allow("ann")

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0)
