"""Router determinism and distribution properties."""

import pytest

from repro.sharding import HashRouter, ShardRouter, UserRouter, router_for
from repro.sharding.router import _mix64


class TestHashRouter:
    def test_deterministic_across_instances(self):
        a, b = HashRouter(4), HashRouter(4)
        for object_id in range(1, 500):
            assert a.route(object_id) == b.route(object_id)

    def test_range(self):
        for shards in (1, 2, 3, 7):
            router = HashRouter(shards)
            assert all(
                0 <= router.route(i) < shards for i in range(1, 1000)
            )

    def test_spreads_sequential_ids(self):
        """Sequential ids (the facade's allocation pattern) must not
        stripe or pile up: every shard of 4 gets a reasonable share of
        1000 consecutive ids."""
        router = HashRouter(4)
        counts = [0] * 4
        for object_id in range(1, 1001):
            counts[router.route(object_id)] += 1
        assert min(counts) > 150  # perfectly even would be 250

    def test_single_shard_is_identity(self):
        router = HashRouter(1)
        assert {router.route(i) for i in range(1, 100)} == {0}

    def test_mix64_is_a_permutation_prefix(self):
        # splitmix64's finalizer is a bijection on 64-bit ints;
        # collisions in a small prefix would mean we broke it.
        outputs = {_mix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000


class TestUserRouter:
    def test_same_owner_same_shard(self):
        router = UserRouter(5)
        shard = router.route(1, owner="ann")
        assert all(
            router.route(i, owner="ann") == shard for i in range(2, 200)
        )

    def test_deterministic_no_process_salt(self):
        # crc32 of the UTF-8 bytes: a fixed value, unlike hash().
        import zlib

        router = UserRouter(3)
        assert router.route(7, owner="bob") == zlib.crc32(b"bob") % 3

    def test_ownerless_objects_fall_back_to_id_hash(self):
        router = UserRouter(4)
        shards = {router.route(i) for i in range(1, 200)}
        assert len(shards) == 4  # spread, not piled on shard 0


class TestRouterFor:
    def test_known_kinds(self):
        assert isinstance(router_for("hash", 2), HashRouter)
        assert isinstance(router_for("user", 2), UserRouter)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown shard router"):
            router_for("rendezvous", 2)

    def test_rejects_empty_topology(self):
        with pytest.raises(ValueError):
            HashRouter(0)

    def test_abstract_route_unimplemented(self):
        with pytest.raises(NotImplementedError):
            ShardRouter(2).route(1)
