"""ShardedCatalog behaviour: topology, reopen, lifecycle, and the
shard-scoped cache-token contract.

The equivalence-with-one-catalog property lives in
``tests/integration/test_shard_parity_properties.py``; this module
pins the federation mechanics around it.
"""

import pytest

from repro.core import AttributeCriteria, ObjectQuery, Op
from repro.errors import CatalogClosedError, CatalogError
from repro.grid import FIG3_DOCUMENT, define_fig3_attributes, lead_schema
from repro.obs import MetricsRegistry
from repro.sharding import (
    ShardedCatalog,
    Topology,
    UserRouter,
    check_sharded_catalog,
    read_topology,
    shard_db_paths,
    write_topology,
)


def theme_query():
    return ObjectQuery().add_attribute(
        AttributeCriteria("theme").add_element(
            "themekey", "", "precipitation", Op.CONTAINS
        )
    )


def build(shards=3, path=None, router=None, ingest=5):
    catalog = ShardedCatalog(
        lead_schema(), shards=shards, path=path, router=router,
        metrics=MetricsRegistry(),
    )
    define_fig3_attributes(catalog)
    for index in range(ingest):
        catalog.ingest(FIG3_DOCUMENT, name=f"o{index}", owner=f"u{index % 2}")
    return catalog


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(CatalogError):
            ShardedCatalog(lead_schema(), shards=0, metrics=MetricsRegistry())

    def test_rejects_mismatched_router(self):
        with pytest.raises(CatalogError, match="router covers"):
            ShardedCatalog(
                lead_schema(), shards=3, router=UserRouter(2),
                metrics=MetricsRegistry(),
            )

    def test_objects_spread_across_shards(self):
        catalog = build(shards=3, ingest=12)
        held = {index for index in catalog._locations.values()}
        assert len(held) > 1
        assert sum(len(cat) for cat in catalog.shards) == 12

    def test_shared_registry_is_every_shards_registry(self):
        catalog = build()
        for cat in catalog.shards:
            assert cat.registry is catalog.registry
            assert cat.shredder is catalog.shredder

    def test_ids_allocated_globally_and_sequentially(self):
        catalog = build(ingest=7)
        assert sorted(catalog._locations) == list(range(1, 8))

    def test_user_router_colocates_owner(self):
        catalog = ShardedCatalog(
            lead_schema(), shards=4, router=UserRouter(4),
            metrics=MetricsRegistry(),
        )
        define_fig3_attributes(catalog)
        for index in range(8):
            catalog.ingest(FIG3_DOCUMENT, name=f"o{index}", owner="ann")
        assert len(set(catalog._locations.values())) == 1


class TestTopologySidecar:
    def test_roundtrip(self, tmp_path):
        base = str(tmp_path / "cat.db")
        write_topology(base, Topology(4, "user"))
        topo = read_topology(base)
        assert (topo.shards, topo.router) == (4, "user")

    def test_missing_sidecar_reads_none(self, tmp_path):
        assert read_topology(str(tmp_path / "nope.db")) is None

    def test_version_mismatch_rejected(self, tmp_path):
        base = str(tmp_path / "cat.db")
        path = write_topology(base, Topology(2))
        path.write_text(path.read_text().replace('"version": 1', '"version": 99'))
        with pytest.raises(ValueError, match="unsupported"):
            read_topology(base)

    def test_shard_db_paths(self):
        assert shard_db_paths("cat.db", 2) == ["cat.db.shard0", "cat.db.shard1"]


class TestReopen:
    def test_state_survives_reopen(self, tmp_path):
        base = str(tmp_path / "cat.db")
        catalog = build(shards=3, path=base, ingest=6)
        extra = catalog.define_attribute("provenance", "LAB")
        catalog.define_element(extra, "tool", "LAB")
        expected = catalog.query(theme_query())
        expected_xml = catalog.fetch(expected)
        catalog.close()

        reopened = ShardedCatalog(
            lead_schema(), shards=3, path=base, metrics=MetricsRegistry()
        )
        assert len(reopened) == 6
        assert reopened.query(theme_query()) == expected
        assert reopened.fetch(expected) == expected_xml
        assert reopened.registry.lookup_attribute("provenance", "LAB") is not None
        assert check_sharded_catalog(reopened, deep=True) == []
        # Id allocation resumes after the global max, not a shard max.
        receipt = reopened.ingest(FIG3_DOCUMENT, name="later")
        assert receipt.object_id == 7
        reopened.close()

    def test_reopen_heals_lagging_definition_sync(self, tmp_path):
        """A shard missing definition rows (the mid-fan-out crash
        leftover) is caught up by the union-rehydrate + sync pass that
        every open performs."""
        from repro.faults import FaultError, FaultPlan

        base = str(tmp_path / "cat.db")
        catalog = build(shards=3, path=base, ingest=3)
        catalog.install_faults(FaultPlan(site="shard:sync", site_occurrence=2))
        with pytest.raises(FaultError):
            catalog.define_attribute("lagged", "LAB")
        catalog.clear_faults()
        catalog.close()

        reopened = ShardedCatalog(
            lead_schema(), shards=3, path=base, metrics=MetricsRegistry()
        )
        assert reopened.registry.lookup_attribute("lagged", "LAB") is not None
        counts = {
            dict((n, r) for n, r, _s in cat.storage_report())["attr_defs"]
            for cat in reopened.shards
        }
        assert len(counts) == 1
        reopened.close()


class TestLifecycle:
    def test_close_is_idempotent(self):
        catalog = build()
        catalog.close()
        catalog.close()  # no-op, no raise

    def test_query_after_close_raises(self):
        catalog = build()
        expected_token = catalog.cache_token()
        catalog.query(theme_query())  # warm the per-shard caches
        assert catalog.cache_token() == expected_token
        catalog.close()
        with pytest.raises(CatalogClosedError):
            catalog.query(theme_query())

    @pytest.mark.parametrize("op", ["ingest", "delete", "define", "fetch", "stats"])
    def test_every_surface_checks_closed(self, op):
        catalog = build()
        catalog.close()
        with pytest.raises(CatalogClosedError):
            if op == "ingest":
                catalog.ingest(FIG3_DOCUMENT, name="late")
            elif op == "delete":
                catalog.delete(1)
            elif op == "define":
                catalog.define_attribute("late", "LAB")
            elif op == "fetch":
                catalog.fetch([1])
            else:
                catalog.collect_statistics()

    def test_one_shard_closed_fails_whole_query(self):
        """The per-leg re-check (PR 5's lifecycle contract, extended
        to the sharded path): a federation with one closed shard
        raises instead of serving the remaining shards' rows — even
        when every leg's result cache is warm."""
        catalog = build(shards=3)
        catalog.query(theme_query())  # warm every per-shard cache
        catalog.shards[1].store.close()
        with pytest.raises(CatalogClosedError):
            catalog.query(theme_query())

    def test_close_closes_rest_when_one_shard_already_closed(self):
        catalog = build(shards=3)
        catalog.shards[0].store.close()  # pre-closed: close() is idempotent
        catalog.close()
        assert all(cat.store._closed for cat in catalog.shards)


class TestCacheScoping:
    def test_write_moves_exactly_one_token_slot(self):
        catalog = build(shards=3, ingest=6)
        before = catalog.cache_token()
        receipt = catalog.ingest(FIG3_DOCUMENT, name="probe", owner="zz")
        after = catalog.cache_token()
        moved = [
            index for index in range(3) if before[index] != after[index]
        ]
        assert moved == [catalog.shard_of(receipt.object_id)]

    def test_untouched_shards_keep_serving_warm_hits(self):
        catalog = build(shards=3, ingest=9)
        catalog.query(theme_query())  # cold: every leg misses
        hits = lambda: catalog.metrics.counter(  # noqa: E731
            "query_cache_hits_total",
            "query results served from the result cache",
        ).value
        warm_before = hits()
        catalog.query(theme_query())  # warm: every leg hits
        assert hits() == warm_before + 3
        # A write to one shard invalidates that shard's leg only.
        receipt = catalog.ingest(FIG3_DOCUMENT, name="inval", owner="q")
        touched = catalog.shard_of(receipt.object_id)
        before = hits()
        assert catalog.query(theme_query())  # N-1 hits + 1 recompute
        assert hits() == before + 2
        # And the recomputed leg was the touched shard's: its token
        # moved, the others did not (asserted per-slot above).
        assert touched in range(3)


class TestAccounting:
    def test_len_and_object_name(self):
        catalog = build(ingest=4)
        assert len(catalog) == 4
        assert catalog.object_name(2) == "o1"
        with pytest.raises(CatalogError):
            catalog.object_name(99)

    def test_shard_of_unknown_object(self):
        catalog = build()
        with pytest.raises(CatalogError):
            catalog.shard_of(12345)

    def test_delete_updates_routing_map(self):
        catalog = build(ingest=4)
        shard = catalog.shard_of(2)
        catalog.delete(2)
        assert 2 not in catalog._locations
        assert len(catalog) == 3
        assert check_sharded_catalog(catalog, deep=True) == []
        assert shard in range(3)

    def test_shard_status_totals_match(self):
        catalog = build(ingest=6)
        status = catalog.shard_status()
        assert [index for index, *_rest in status] == [0, 1, 2]
        assert sum(objects for _i, _p, objects, _b in status) == 6

    def test_fsck_detects_routing_map_drift(self):
        catalog = build(ingest=4)
        catalog._locations[999] = 0  # phantom entry
        violations = check_sharded_catalog(catalog)
        assert any("no shard stores it" in v for v in violations)

    def test_fsck_detects_misplaced_object(self):
        """An object stored on a shard its router disowns (e.g. after
        a topology change) is a reported violation."""
        catalog = build(shards=3, ingest=5)
        victim = next(iter(catalog._locations))
        owner_shard = catalog._locations[victim]
        wrong = (owner_shard + 1) % 3
        # Copy the object's rows onto the wrong shard out-of-band.
        doc_xml = catalog.fetch([victim])[victim]
        catalog.shards[wrong].ingest(doc_xml, name="dup", object_id=victim)
        violations = check_sharded_catalog(catalog)
        assert any("stored in shards" in v for v in violations)
