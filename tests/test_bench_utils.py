"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench import (
    ALL_SCHEMES,
    ResultTable,
    build_schemes,
    empty_schemes,
    measure,
    speedup,
    throughput,
)
from repro.grid import CorpusConfig


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable("title", ["name", "value"])
        table.add_row("short", 1)
        table.add_row("much-longer-name", 123.456)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "title"
        assert "much-longer-name" in rendered
        assert all(len(lines[2]) == len(lines[3]) for _ in [0])

    def test_wrong_arity_rejected(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_values(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column_values("a") == [1, 2]
        assert table.column_values("b") == ["x", "y"]

    def test_float_formatting(self):
        from repro.bench.tables import _format

        assert _format(0) == "0"
        assert _format(0.0) == "0"
        assert _format(123.456) == "123.5"
        assert _format(1.23456) == "1.235"
        assert _format(0.000123) == "1.230e-04"
        assert _format("text") == "text"

    def test_empty_table_renders(self):
        table = ResultTable("empty", ["a"])
        assert "empty" in table.render()


class TestTiming:
    def test_measure_returns_positive_time_and_result(self):
        seconds, result = measure(lambda: sum(range(100)), repeat=2)
        assert seconds >= 0
        assert result == 4950

    def test_measure_takes_best_of_repeats(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        _seconds, result = measure(fn, repeat=3, number=2)
        assert len(calls) == 6
        assert result == 6

    def test_throughput(self):
        assert throughput(10, 2.0) == 5.0
        assert throughput(10, 0.0) == 0.0

    def test_speedup(self):
        assert speedup(1.0, 12.3) == "12.3x"
        assert speedup(0.0, 1.0) == "n/a"


class TestSchemeBuilders:
    def test_build_schemes_loads_all(self):
        schemes = build_schemes(CorpusConfig(seed=1), 3)
        assert set(schemes) == set(ALL_SCHEMES)
        assert all(s.total_rows() > 0 for s in schemes.values())

    def test_build_subset(self):
        schemes = build_schemes(CorpusConfig(seed=1), 2, schemes=["hybrid", "clob"])
        assert set(schemes) == {"hybrid", "clob"}

    def test_empty_schemes_have_no_documents(self):
        schemes = empty_schemes(CorpusConfig(seed=1), schemes=["clob"])
        assert schemes["clob"].total_rows() == 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_schemes(CorpusConfig(seed=1), 1, schemes=["oracle9i"])
        with pytest.raises(ValueError):
            empty_schemes(CorpusConfig(seed=1), schemes=["oracle9i"])

    def test_schemes_share_definitions(self):
        """All schemes resolve the same dynamic definitions (one shared
        registry), so comparisons measure storage, not bookkeeping."""
        schemes = build_schemes(CorpusConfig(seed=1), 2,
                                schemes=["hybrid", "edge"])
        assert schemes["edge"].registry is schemes["hybrid"].catalog.registry


class TestMetricsDump:
    def test_dump_metrics_writes_snapshot(self, tmp_path):
        import json

        from repro.bench import dump_metrics
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("bench_runs_total").inc(2)
        path = dump_metrics(tmp_path / "nested" / "metrics.json", registry)
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.obs/v1"
        assert data["metrics"][0]["name"] == "bench_runs_total"

    def test_dump_metrics_defaults_to_process_registry(self, tmp_path):
        import json

        from repro.bench import dump_metrics
        from repro.obs import MetricsRegistry, set_default_registry

        mine = MetricsRegistry()
        mine.gauge("marker").set(7)
        previous = set_default_registry(mine)
        try:
            path = dump_metrics(tmp_path / "m.json")
        finally:
            set_default_registry(previous)
        data = json.loads(path.read_text())
        assert any(m["name"] == "marker" for m in data["metrics"])


class TestBenchEmit:
    @pytest.fixture()
    def util(self, tmp_path, monkeypatch):
        """The benchmarks/_util module, redirected to a temp results dir."""
        import importlib.util
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        spec = importlib.util.spec_from_file_location(
            "bench_util_under_test", root / "benchmarks" / "_util.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
        return module

    def test_emit_writes_txt_json_and_metrics(self, util, capsys):
        import json

        table = ResultTable("E99: demo", ["scheme", "seconds"])
        table.add_row("hybrid", 0.012)
        util.emit("e99_demo", table)
        capsys.readouterr()
        assert (util.RESULTS_DIR / "e99_demo.txt").exists()
        data = json.loads((util.RESULTS_DIR / "BENCH_e99_demo.json").read_text())
        assert data["experiment"] == "e99_demo"
        assert data["tables"]["E99: demo"]["columns"] == ["scheme", "seconds"]
        assert data["tables"]["E99: demo"]["rows"] == [["hybrid", 0.012]]
        metrics = json.loads(
            (util.RESULTS_DIR / "BENCH_e99_demo_metrics.json").read_text())
        assert metrics["schema"] == "repro.obs/v1"

    def test_emit_replaces_same_title(self, util, capsys):
        import json

        first = ResultTable("E99: demo", ["v"])
        first.add_row(1)
        util.emit("e99_demo", first)
        second = ResultTable("E99: demo", ["v"])
        second.add_row(2)
        util.emit("e99_demo", second)
        capsys.readouterr()
        data = json.loads((util.RESULTS_DIR / "BENCH_e99_demo.json").read_text())
        assert data["tables"]["E99: demo"]["rows"] == [[2]]
        txt = (util.RESULTS_DIR / "e99_demo.txt").read_text()
        assert txt.count("E99: demo") == 1
