"""Tests for the command-line interface (persisted sqlite catalogs)."""

import pytest

from repro.cli import main
from repro.grid import FIG3_DOCUMENT
from repro.xmlkit import canonical, parse


@pytest.fixture()
def db(tmp_path):
    return str(tmp_path / "catalog.db")


@pytest.fixture()
def fig3_file(tmp_path):
    path = tmp_path / "fig3.xml"
    path.write_text(FIG3_DOCUMENT)
    return str(path)


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def loaded(db, fig3_file, capsys):
    """A catalog with Fig-3 definitions and the Fig-3 document ingested."""
    assert main(["init", "--db", db]) == 0
    assert main(["define", "--db", db, "grid", "ARPS",
                 "--element", "dx:float", "--element", "dz:float"]) == 0
    assert main(["define", "--db", db, "grid-stretching", "ARPS",
                 "--parent", "grid",
                 "--element", "dzmin:float",
                 "--element", "reference-height:float"]) == 0
    assert main(["ingest", "--db", db, fig3_file]) == 0
    capsys.readouterr()
    return db


class TestInit:
    def test_creates_catalog(self, db, capsys):
        code, out, _err = run(capsys, "init", "--db", db)
        assert code == 0
        assert "23 ordered nodes" in out

    def test_refuses_overwrite(self, db, capsys):
        run(capsys, "init", "--db", db)
        code, _out, err = run(capsys, "init", "--db", db)
        assert code == 1
        assert "already exists" in err


class TestDefineAndIngest:
    def test_ingest_reports_counts(self, db, fig3_file, capsys):
        run(capsys, "init", "--db", db)
        code, out, _err = run(capsys, "ingest", "--db", db, fig3_file)
        assert code == 0
        assert "object 1: 4 CLOBs" in out
        assert "warning" in out  # grid/ARPS undefined -> store-only

    def test_defined_vocabulary_removes_warnings(self, loaded, fig3_file, capsys):
        code, out, _err = run(capsys, "ingest", "--db", loaded, fig3_file)
        assert code == 0
        assert "warning" not in out
        assert "object 2" in out

    def test_unknown_type_rejected(self, db, capsys):
        run(capsys, "init", "--db", db)
        code, _out, err = run(capsys, "define", "--db", db, "x", "S",
                              "--element", "v:complex")
        assert code == 1
        assert "unknown type" in err

    def test_unknown_parent_rejected(self, db, capsys):
        run(capsys, "init", "--db", db)
        code, _out, err = run(capsys, "define", "--db", db, "x", "S",
                              "--parent", "ghost")
        assert code == 1


class TestQuery:
    def test_paper_query(self, loaded, capsys):
        code, out, _err = run(
            capsys, "query", "--db", loaded,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000",
            "--sub", "grid-stretching", "--elem", "dzmin = 100",
        )
        assert code == 0
        assert "1 matching object(s): [1]" in out

    def test_trace_flag(self, loaded, capsys):
        code, out, _err = run(
            capsys, "query", "--db", loaded, "--trace",
            "--attr", "theme",
        )
        assert code == 0
        assert "elements-meeting-criteria" in out

    def test_fetch_flag_prints_xml(self, loaded, capsys):
        code, out, _err = run(
            capsys, "query", "--db", loaded, "--fetch", "--attr", "theme",
        )
        assert code == 0
        assert "<LEADresource>" in out

    def test_no_match(self, loaded, capsys):
        code, out, _err = run(
            capsys, "query", "--db", loaded,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 7",
        )
        assert code == 0
        assert "0 matching object(s)" in out

    def test_unknown_definition_is_clean_error(self, loaded, capsys):
        code, _out, err = run(
            capsys, "query", "--db", loaded, "--attr", "nope/X",
        )
        assert code == 1
        assert "error:" in err

    def test_query_without_attr_rejected(self, loaded, capsys):
        with pytest.raises(SystemExit):
            main(["query", "--db", loaded, "--elem", "dx = 1"])

    def test_bad_operator_rejected(self, loaded, capsys):
        with pytest.raises(SystemExit):
            main(["query", "--db", loaded, "--attr", "grid/ARPS",
                  "--elem", "dx ~ 1"])


class TestExplain:
    def test_explain_shows_plan_tree(self, loaded, capsys):
        code, out, _err = run(
            capsys, "explain", "--db", loaded,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000",
            "--sub", "grid-stretching", "--elem", "dzmin = 100",
        )
        assert code == 0
        assert "logical plan:" in out
        assert "ObjectIntersect" in out
        assert "ElementSeek" in out
        assert "AncestorCountMatch" in out
        assert "est~" in out and "actual=" in out
        assert "1 matching object(s)" in out

    def test_explain_reports_plan_source(self, loaded, capsys):
        # Each CLI invocation is a fresh process, so the first plan for
        # the shape is always newly built.
        code, out, _err = run(
            capsys, "explain", "--db", loaded,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000",
        )
        assert code == 0
        assert "plan source: newly built" in out

    def test_stats_surface_plan_cache_counters(self, loaded, capsys):
        code, _out, _err = run(
            capsys, "query", "--db", loaded,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000")
        assert code == 0
        code, out, _err = run(capsys, "stats", "--db", loaded)
        assert code == 0
        assert "plan_cache_misses_total" in out
        assert "plan_cache_size" in out

    def test_stats_storage_lists_tables(self, loaded, capsys):
        code, out, _err = run(capsys, "stats", "--db", loaded, "--storage")
        assert code == 0
        assert "storage:" in out
        assert "elements" in out
        assert "bytes" in out


class TestFetchAndAdd:
    def test_fetch_roundtrip(self, loaded, capsys):
        code, out, _err = run(capsys, "fetch", "--db", loaded, "1")
        assert code == 0
        assert canonical(parse(out.strip())) == canonical(parse(FIG3_DOCUMENT))

    def test_fetch_missing(self, loaded, capsys):
        code, _out, err = run(capsys, "fetch", "--db", loaded, "9")
        assert code == 1

    def test_add_fragment(self, loaded, tmp_path, capsys):
        fragment = tmp_path / "theme.xml"
        fragment.write_text(
            "<theme><themekt>CF</themekt><themekey>added_via_cli</themekey></theme>"
        )
        code, out, _err = run(capsys, "add", "--db", loaded, "1", str(fragment))
        assert code == 0
        code, out, _err = run(
            capsys, "query", "--db", loaded,
            "--attr", "theme", "--elem", "themekey = added_via_cli",
        )
        assert "1 matching object(s): [1]" in out


class TestFsck:
    def test_healthy_catalog(self, loaded, capsys):
        code, out, _err = run(capsys, "fsck", "--db", loaded, "--deep")
        assert code == 0
        assert "no violations" in out

    def test_corrupted_catalog_fails(self, loaded, capsys):
        import sqlite3

        connection = sqlite3.connect(loaded)
        connection.execute(
            "UPDATE clobs SET object_id = 42 "
            "WHERE rowid = (SELECT MIN(rowid) FROM clobs)"
        )
        connection.commit()
        connection.close()
        code, out, _err = run(capsys, "fsck", "--db", loaded)
        assert code == 1
        assert "violation:" in out

    def test_orphan_attribute_row_fails_shallow(self, loaded, capsys):
        import sqlite3

        connection = sqlite3.connect(loaded)
        connection.execute(
            "INSERT INTO attributes VALUES (99, 1, 1, 1, 1)"
        )
        connection.commit()
        connection.close()
        code, out, _err = run(capsys, "fsck", "--db", loaded)
        assert code == 1
        assert "violation:" in out

    def test_mangled_clob_only_caught_by_deep(self, loaded, capsys):
        # Row-level structure stays consistent, so the shallow check
        # passes; only --deep parses the stored XML and fails.
        import sqlite3

        connection = sqlite3.connect(loaded)
        connection.execute(
            "UPDATE clobs SET content = '<broken' "
            "WHERE rowid = (SELECT MIN(rowid) FROM clobs)"
        )
        connection.commit()
        connection.close()
        code, _out, _err = run(capsys, "fsck", "--db", loaded)
        assert code == 0
        code, out, _err = run(capsys, "fsck", "--db", loaded, "--deep")
        assert code == 1
        assert "violation:" in out


class TestRetryKnobs:
    def test_knobs_set_store_policy(self, loaded, fig3_file, monkeypatch, capsys):
        from repro.core import HybridCatalog

        seen = {}
        original = HybridCatalog.ingest

        def spy(self, *args, **kwargs):
            seen["policy"] = self.store.retry_policy
            return original(self, *args, **kwargs)

        monkeypatch.setattr(HybridCatalog, "ingest", spy)
        code, _out, _err = run(
            capsys, "ingest", "--db", loaded, fig3_file,
            "--retry-attempts", "5", "--retry-backoff", "0.001",
        )
        assert code == 0
        assert seen["policy"].max_attempts == 5
        assert seen["policy"].base_delay == pytest.approx(0.001)

    def test_invalid_knob_is_clean_error(self, loaded, capsys):
        code, _out, err = run(
            capsys, "info", "--db", loaded, "--retry-attempts", "0",
        )
        assert code == 1
        assert "error:" in err


class TestInfoAndSchema:
    def test_info(self, loaded, capsys):
        code, out, _err = run(capsys, "info", "--db", loaded)
        assert code == 0
        assert "objects: 1" in out
        assert "clobs" in out

    def test_schema_default(self, capsys):
        code, out, _err = run(capsys, "schema")
        assert code == 0
        assert "theme [ATTRIBUTE]" in out

    def test_schema_from_xsd(self, tmp_path, capsys):
        from repro.grid import LEAD_XSD

        path = tmp_path / "lead.xsd"
        path.write_text(LEAD_XSD)
        code, out, _err = run(capsys, "schema", "--xsd", str(path))
        assert code == 0
        assert "detailed [ATTRIBUTE]" in out


class TestPersistence:
    def test_state_survives_reopen(self, loaded, fig3_file, capsys):
        # Each CLI call opens a fresh process-equivalent catalog; the
        # fixture already exercised that.  Verify ids continue.
        code, out, _err = run(capsys, "ingest", "--db", loaded, fig3_file)
        assert "object 2" in out
        code, out, _err = run(capsys, "info", "--db", loaded)
        assert "objects: 2" in out

    def test_init_with_custom_xsd_sidecar(self, tmp_path, capsys):
        from repro.grid import LEAD_XSD

        xsd = tmp_path / "lead.xsd"
        xsd.write_text(LEAD_XSD)
        db = str(tmp_path / "c.db")
        code, out, _err = run(capsys, "init", "--db", db, "--xsd", str(xsd))
        assert code == 0
        assert (tmp_path / "c.db.xsd").exists()
        # Later commands load the sidecar schema transparently.
        code, out, _err = run(capsys, "info", "--db", db)
        assert code == 0


class TestStats:
    def test_stats_after_session(self, loaded, capsys):
        """Metrics accumulate in the sidecar across CLI invocations and
        surface through `repro stats`."""
        code, _out, _err = run(
            capsys, "query", "--db", loaded,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000")
        assert code == 0
        code, out, _err = run(capsys, "stats", "--db", loaded)
        assert code == 0
        for name in ("catalog_ingest_seconds", "catalog_query_seconds",
                     "shredder_clobs_total", "planner_stage_rows",
                     "sqlite_statements_total"):
            assert name in out, f"{name} missing from stats output"

    def test_stats_json_format(self, loaded, capsys):
        import json

        code, out, _err = run(capsys, "stats", "--db", loaded, "--format", "json")
        assert code == 0
        data = json.loads(out)
        assert data["schema"] == "repro.obs/v1"
        assert any(m["name"] == "shredder_clobs_total" for m in data["metrics"])

    def test_stats_prom_format_parses(self, loaded, capsys):
        code, out, _err = run(capsys, "stats", "--db", loaded, "--format", "prom")
        assert code == 0
        assert "# TYPE catalog_ingest_seconds histogram" in out
        assert 'catalog_ingest_seconds_bucket{le="+Inf"}' in out

    def test_stats_reset_clears_sidecar(self, loaded, capsys):
        import pathlib

        sidecar = pathlib.Path(loaded + ".metrics.json")
        assert sidecar.exists()
        code, _out, _err = run(capsys, "stats", "--db", loaded, "--reset")
        assert code == 0
        assert not sidecar.exists()
        code, out, _err = run(capsys, "stats", "--db", loaded)
        assert "(no metrics recorded)" in out

    def test_stats_empty_db_reports_none(self, db, capsys):
        run(capsys, "init", "--db", db)
        import pathlib

        pathlib.Path(db + ".metrics.json").unlink()
        code, out, _err = run(capsys, "stats", "--db", db)
        assert code == 0
        assert "(no metrics recorded)" in out

    def test_metrics_json_flag(self, loaded, fig3_file, tmp_path, capsys):
        """--metrics-json dumps this invocation's registry to a file."""
        import json

        out_path = tmp_path / "run.json"
        code, _out, _err = run(
            capsys, "ingest", "--db", loaded, fig3_file,
            "--metrics-json", str(out_path))
        assert code == 0
        data = json.loads(out_path.read_text())
        names = {m["name"] for m in data["metrics"]}
        assert "catalog_ingest_seconds" in names
        assert "shredder_clobs_total" in names


class TestConcurrentCli:
    """The --threads knobs: concurrent readers through the CLI agree
    with each other, and the bench/stats probes report sane output."""

    def test_query_threads_identical_results(self, loaded, capsys):
        code, out, _err = run(
            capsys, "query", "--db", loaded, "--threads", "4",
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000",
        )
        assert code == 0
        assert "4 concurrent readers: identical results" in out
        assert "1 matching object(s): [1]" in out

    def test_bench_reports_percentiles_and_qps(self, loaded, capsys):
        code, out, _err = run(
            capsys, "bench", "--db", loaded, "--threads", "2",
            "--repeat", "10", "--attr", "grid/ARPS",
            "--elem", "dx/ARPS = 1000",
        )
        assert code == 0
        assert "20 queries across 2 thread(s)" in out
        assert "p50" in out and "p95" in out and "QPS" in out

    def test_bench_no_result_cache(self, loaded, capsys):
        code, out, _err = run(
            capsys, "bench", "--db", loaded, "--threads", "2",
            "--repeat", "5", "--no-result-cache", "--attr", "theme",
        )
        assert code == 0
        assert "10 queries across 2 thread(s)" in out

    def test_bench_rejects_bad_counts(self, loaded, capsys):
        code, _out, err = run(
            capsys, "bench", "--db", loaded, "--threads", "0",
            "--attr", "theme",
        )
        assert code == 1
        assert "must be >= 1" in err

    def test_stats_threads_probe(self, loaded, capsys):
        code, out, _err = run(
            capsys, "stats", "--db", loaded, "--threads", "3",
        )
        assert code == 0
        assert "3 concurrent statistics snapshots: identical" in out


class TestExplainAnalyze:
    def test_analyze_appends_profile_table(self, loaded, capsys):
        code, out, _err = run(
            capsys, "explain", "--db", loaded, "--analyze",
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000",
            "--sub", "grid-stretching", "--elem", "dzmin = 100",
        )
        assert code == 0
        assert "profile (sqlite" in out
        assert "in=" in out and "out=" in out
        assert "est~" in out and "Δ" in out
        assert " ms" in out
        assert "waits: lock=" in out and "pool=" in out

    def test_without_analyze_no_profile(self, loaded, capsys):
        code, out, _err = run(
            capsys, "explain", "--db", loaded,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000",
        )
        assert code == 0
        assert "profile (" not in out


class TestEvents:
    def test_queries_are_journaled(self, loaded, capsys):
        run(capsys, "query", "--db", loaded,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000")
        code, out, _err = run(capsys, "events", "--db", loaded)
        assert code == 0
        assert "query" in out
        assert "matches=1" in out

    def test_slow_ms_embeds_profile(self, loaded, capsys):
        run(capsys, "query", "--db", loaded, "--slow-ms", "0",
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000")
        code, out, _err = run(
            capsys, "events", "--db", loaded, "--event", "slow_query")
        assert code == 0
        assert "slow_query" in out
        assert "stages" in out  # "profile=N stages"

    def test_json_envelopes(self, loaded, capsys):
        import json as _json

        run(capsys, "query", "--db", loaded, "--slow-ms", "0",
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000")
        code, out, _err = run(
            capsys, "events", "--db", loaded, "--json",
            "--event", "slow_query", "--tail", "1")
        assert code == 0
        record = _json.loads(out)
        assert record["schema"] == "repro.events/v1"
        profile = record["fields"]["profile"]
        assert profile["backend"] == "sqlite"
        assert [s["kind"] for s in profile["stages"]][-1] == "ObjectIntersect"

    def test_no_sidecar_is_clean(self, db, capsys):
        run(capsys, "init", "--db", db)
        code, out, _err = run(capsys, "events", "--db", db)
        assert code == 0
        assert "no events recorded" in out

    def test_tail_limits_output(self, loaded, capsys):
        for _ in range(4):
            run(capsys, "query", "--db", loaded,
                "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000")
        code, out, _err = run(
            capsys, "events", "--db", loaded, "--tail", "2")
        assert code == 0
        assert len(out.strip().splitlines()) == 2


class TestTop:
    def test_renders_frames(self, loaded, capsys):
        code, out, _err = run(
            capsys, "top", "--db", loaded, "--frames", "2",
            "--interval", "0.05")
        assert code == 0
        lines = out.strip().splitlines()
        assert "qps" in lines[0] and "q_p95_ms" in lines[0]
        assert len(lines) == 3  # header + 2 frames

    def test_loader_threads_generate_traffic(self, loaded, capsys):
        code, out, _err = run(
            capsys, "top", "--db", loaded, "--frames", "2",
            "--interval", "0.1", "--threads", "2",
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000")
        assert code == 0
        frames = out.strip().splitlines()[1:]
        qps_values = [float(line.split()[1]) for line in frames]
        assert any(v > 0 for v in qps_values)

    def test_rejects_bad_knobs(self, loaded, capsys):
        code, _out, err = run(
            capsys, "top", "--db", loaded, "--frames", "0")
        assert code == 1
        assert "--frames" in err


@pytest.fixture()
def sharded_db(db, fig3_file, capsys):
    """A 3-shard federation with Fig-3 definitions and two Fig-3
    documents ingested (ids 1 and 2, routed by hashed object id)."""
    assert main(["init", "--db", db, "--shards", "3"]) == 0
    assert main(["define", "--db", db, "grid", "ARPS",
                 "--element", "dx:float", "--element", "dz:float"]) == 0
    assert main(["ingest", "--db", db, fig3_file, fig3_file]) == 0
    capsys.readouterr()
    return db


class TestShardedCli:
    def test_init_creates_topology_sidecar_and_shard_files(self, db, capsys):
        import pathlib

        code, out, _err = run(capsys, "init", "--db", db, "--shards", "3")
        assert code == 0
        assert "3 shard(s)" in out
        assert pathlib.Path(db + ".shards.json").exists()
        for index in range(3):
            assert pathlib.Path(f"{db}.shard{index}").exists()
        assert not pathlib.Path(db).exists()  # no monolithic file

    def test_init_refuses_overwrite_via_sidecar(self, db, capsys):
        # The base db file never exists for a sharded layout; the
        # sidecar alone must block a second init.
        run(capsys, "init", "--db", db, "--shards", "2")
        code, _out, err = run(capsys, "init", "--db", db)
        assert code == 1
        assert "already exists" in err

    def test_init_rejects_zero_shards(self, db, capsys):
        code, _out, err = run(capsys, "init", "--db", db, "--shards", "0")
        assert code == 1
        assert "--shards" in err

    def test_reopen_roundtrip_across_invocations(self, sharded_db, capsys):
        # Each CLI invocation reopens the federation from the sidecar.
        code, out, _err = run(
            capsys, "query", "--db", sharded_db,
            "--attr", "grid/ARPS", "--elem", "dx/ARPS = 1000",
        )
        assert code == 0
        assert "2 matching object(s): [1, 2]" in out
        code, out, _err = run(capsys, "fetch", "--db", sharded_db, "1", "2")
        assert code == 0
        assert out.count("<LEADresource>") == 2

    def test_trace_shows_scatter_gather(self, sharded_db, capsys):
        code, out, _err = run(
            capsys, "query", "--db", sharded_db, "--trace", "--attr", "theme",
        )
        assert code == 0
        assert "scatter-gather" in out
        assert "shard-0" in out

    def test_fsck_reports_federation_summary(self, sharded_db, capsys):
        code, out, _err = run(capsys, "fsck", "--db", sharded_db, "--deep")
        assert code == 0
        assert "2 objects across 3 shard(s), no violations" in out

    def test_shard_status_lists_every_shard(self, sharded_db, capsys):
        code, out, _err = run(capsys, "shard-status", "--db", sharded_db)
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("router: hash")
        assert len(lines) == 2 + 3 + 1  # router + header + shards + totals
        totals = lines[-1].split()
        assert totals[0] == "all" and totals[1] == "2"
        assert f"{sharded_db}.shard0" in out

    def test_shard_status_on_unsharded_catalog(self, loaded, capsys):
        code, out, _err = run(capsys, "shard-status", "--db", loaded)
        assert code == 0
        assert "not sharded" in out

    def test_by_user_router_recorded_in_topology(self, db, capsys):
        from repro.sharding import read_topology

        code, _out, _err = run(
            capsys, "init", "--db", db, "--shards", "2", "--by-user")
        assert code == 0
        assert read_topology(db).router == "user"
        code, out, _err = run(capsys, "shard-status", "--db", db)
        assert code == 0
        assert "router: user" in out


class TestSearchCommand:
    def test_search_streams_matching_xml(self, loaded, capsys):
        code, out, err = run(capsys, "search", "--db", loaded,
                             "--attr", "grid/ARPS")
        assert code == 0
        assert "1 matching object(s); streaming 1 from offset 0" in err
        assert canonical(parse(out)) is not None  # stdout is pure XML

    def test_search_pagination(self, loaded, fig3_file, capsys):
        run(capsys, "ingest", "--db", loaded, fig3_file)
        run(capsys, "ingest", "--db", loaded, fig3_file)
        code, out, err = run(capsys, "search", "--db", loaded,
                             "--attr", "grid/ARPS",
                             "--offset", "1", "--limit", "1")
        assert code == 0
        assert "3 matching object(s); streaming 1 from offset 1" in err
        assert out.count("<LEADresource>") == 1

    def test_search_offset_past_end_is_empty(self, loaded, capsys):
        code, out, err = run(capsys, "search", "--db", loaded,
                             "--attr", "grid/ARPS", "--offset", "10")
        assert code == 0
        assert out == ""
        assert "streaming 0" in err

    def test_search_negative_flags_rejected(self, loaded, capsys):
        code, _out, err = run(capsys, "search", "--db", loaded,
                              "--attr", "grid/ARPS", "--offset", "-1")
        assert code == 1
        assert "--offset" in err

    def test_search_through_closed_pipe_never_tracebacks(
            self, loaded, fig3_file):
        """The satellite acceptance: `repro search | head` exits
        cleanly with no BrokenPipeError traceback."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        for _ in range(8):  # enough output to overrun the pipe buffer
            subprocess.run(
                [sys.executable, "-m", "repro", "ingest",
                 "--db", loaded, fig3_file],
                env=env, cwd=os.getcwd(), capture_output=True, check=True,
            )
        proc = subprocess.run(
            f"{sys.executable} -m repro search --db {loaded} "
            f"--attr grid/ARPS | head -c 64",
            shell=True, env=env, cwd=os.getcwd(),
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "Traceback" not in proc.stderr
        assert "BrokenPipeError" not in proc.stderr


class TestPipeSafeWriter:
    def test_goes_quiet_after_broken_pipe(self, monkeypatch):
        import io
        import sys as _sys

        from repro.cli import PipeSafeWriter

        writes = []

        class BrokenStdout:
            def write(self, text):
                raise BrokenPipeError

            def fileno(self):
                raise io.UnsupportedOperation("fileno")

        monkeypatch.setattr(_sys, "stdout", BrokenStdout())
        writer = PipeSafeWriter()
        assert writer.line("first") is False
        assert writer.closed is True
        # Subsequent writes are refused without touching stdout.
        monkeypatch.setattr(_sys, "stdout", type(
            "Recorder", (), {"write": staticmethod(writes.append)})())
        assert writer.write("second") is False
        assert writes == []


class TestServeCommand:
    def test_serve_refuses_sharded_catalog(self, db, capsys):
        run(capsys, "init", "--db", db, "--shards", "2")
        code, _out, err = run(capsys, "serve", "--db", db, "--port", "0")
        assert code == 1
        assert "unsharded" in err

    def test_serve_round_trip_and_clean_shutdown(self, loaded):
        """Start `repro serve` as a subprocess on an ephemeral port,
        run an authenticated round trip, SIGINT it, expect exit 0."""
        import os
        import re
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--db", loaded,
             "--port", "0"],
            env=env, cwd=os.getcwd(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, f"no address line: {line!r}"
            host, port = match.group(1), int(match.group(2))

            from repro.core import AttributeCriteria, ObjectQuery
            from repro.server import CatalogClient

            with CatalogClient(host, port) as client:
                assert client.create_user("ann")[0] == 201
                client.open_session("ann")
                status, exp = client.create_experiment("run-1")
                assert status == 201
                status, receipt = client.add_file(
                    exp["experiment_id"], FIG3_DOCUMENT, name="fig3"
                )
                assert status == 201
                query = ObjectQuery().add_attribute(
                    AttributeCriteria("grid", "ARPS")
                )
                status, result = client.query(query)
                assert status == 200
                assert receipt["object_id"] in result["ids"]
                page = client.search(query, limit=1)
                assert page.total >= 1 and len(page.ids) == 1
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                out, err = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert proc.returncode == 0, err
        assert "server stopped" in out
        # A second SIGINT was never needed and nothing tracebacked.
        assert "Traceback" not in err
