"""Every example script runs and produces its headline output.

Examples are user-facing documentation; these tests keep them from
rotting as the library evolves.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / f"{name}.py"
    assert path.exists(), path
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "matching objects: [1]" in out
        assert "elements-meeting-criteria" in out
        assert "<LEADresource>" in out

    def test_show_lead_schema(self, capsys):
        out = run_example("show_lead_schema", capsys)
        assert "theme [ATTRIBUTE] #9" in out
        assert "dynamic attribute sections: ['detailed']" in out

    def test_query_walkthrough(self, capsys):
        out = run_example("query_walkthrough", capsys)
        assert "Memory-engine plan (matching objects: [1])" in out
        assert "SQLite plan" in out
        assert "dzmin" in out

    def test_weather_campaign(self, capsys):
        out = run_example("weather_campaign", capsys)
        assert "bob's search (dx <= 1000): objects [2]" in out
        assert "after publishing" in out

    def test_ontology_search(self, capsys):
        out = run_example("ontology_search", capsys)
        assert "expanded matches:" in out
        assert "concept 'precipitation'" in out

    def test_guided_query(self, capsys):
        out = run_example("guided_query", capsys)
        assert "grid/ARPS" in out
        assert "matches: [1]" in out
        assert "element('dx', 'wide')" in out

    def test_catalog_comparison(self, capsys):
        out = run_example("catalog_comparison", capsys)
        assert "query agreement across schemes: 12/12" in out
        assert "canonically equals hybrid: True" in out

    def test_cross_discipline(self, capsys):
        out = run_example("cross_discipline", capsys)
        assert "beam-current >= 150 mA: objects [2, 3]" in out
        assert "products derived from raw data: [3]" in out
        assert "schema: CLRC" in out

    def test_bulk_campaign(self, capsys):
        out = run_example("bulk_campaign", capsys)
        assert "bulk-loaded 120 documents" in out
        assert "reopened" in out
        assert "QC-annotated runs   : [1, 2, 3]" in out
