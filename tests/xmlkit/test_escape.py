"""Unit tests for XML escaping/unescaping."""

import pytest

from repro.xmlkit import escape_attribute, escape_text, unescape


class TestEscapeText:
    def test_plain_text_unchanged(self):
        assert escape_text("hello world") == "hello world"

    def test_ampersand(self):
        assert escape_text("a & b") == "a &amp; b"

    def test_angle_brackets(self):
        assert escape_text("<tag>") == "&lt;tag&gt;"

    def test_mixed(self):
        assert escape_text("a<b & c>d") == "a&lt;b &amp; c&gt;d"

    def test_quote_not_escaped_in_text(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_empty(self):
        assert escape_text("") == ""


class TestEscapeAttribute:
    def test_double_quote_escaped(self):
        assert escape_attribute('a "b" c') == "a &quot;b&quot; c"

    def test_ampersand_and_lt(self):
        assert escape_attribute("<&") == "&lt;&amp;"

    def test_plain_unchanged(self):
        assert escape_attribute("plain") == "plain"


class TestUnescape:
    def test_named_entities(self):
        assert unescape("&amp;&lt;&gt;&quot;&apos;") == "&<>\"'"

    def test_decimal_reference(self):
        assert unescape("&#65;") == "A"

    def test_hex_reference(self):
        assert unescape("&#x41;") == "A"
        assert unescape("&#X41;") == "A"

    def test_no_entities_passthrough(self):
        assert unescape("plain text") == "plain text"

    def test_unicode_reference(self):
        assert unescape("&#x2603;") == "☃"

    def test_unterminated_raises(self):
        with pytest.raises(ValueError, match="unterminated"):
            unescape("a &amp b")

    def test_unknown_entity_raises(self):
        with pytest.raises(ValueError, match="unknown entity"):
            unescape("&bogus;")

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError, match="empty entity"):
            unescape("&;")

    def test_roundtrip_text(self):
        original = "temp < 30 & pressure > 1000"
        assert unescape(escape_text(original)) == original

    def test_roundtrip_attribute(self):
        original = 'he said "x < y & z"'
        assert unescape(escape_attribute(original)) == original
