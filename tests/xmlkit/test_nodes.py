"""Unit tests for the Element/Document node model."""

from repro.xmlkit import Document, Element, element, parse


class TestConstruction:
    def test_element_helper_nests(self):
        e = element("a", element("b", "text"), x="1")
        assert e.tag == "a"
        assert e.attributes == {"x": "1"}
        assert e.find("b").text() == "text"

    def test_append_chains(self):
        e = Element("a").append(Element("b")).append("txt")
        assert len(e.children) == 2

    def test_extend(self):
        e = Element("a")
        e.extend([Element("b"), Element("c")])
        assert [c.tag for c in e.child_elements()] == ["b", "c"]


class TestNavigation:
    def test_find_first_match(self):
        e = element("a", element("b", "1"), element("b", "2"))
        assert e.find("b").text() == "1"

    def test_find_missing_returns_none(self):
        assert element("a").find("zzz") is None

    def test_find_all_in_order(self):
        e = element("a", element("b", "1"), element("c"), element("b", "2"))
        assert [x.text() for x in e.find_all("b")] == ["1", "2"]

    def test_iter_preorder(self):
        e = element("a", element("b", element("c")), element("d"))
        assert [n.tag for n in e.iter()] == ["a", "b", "c", "d"]

    def test_deep_text(self):
        e = element("a", "x", element("b", "y", element("c", "z")))
        assert e.deep_text() == "xyz"

    def test_descendant_count(self):
        e = element("a", element("b", element("c")), element("d"))
        assert e.descendant_count() == 4

    def test_has_element_children(self):
        assert element("a", element("b")).has_element_children()
        assert not element("a", "text only").has_element_children()


class TestSerialization:
    def test_to_xml_escapes_text(self):
        assert element("a", "x < y").to_xml() == "<a>x &lt; y</a>"

    def test_to_xml_escapes_attributes(self):
        assert element("a", **{"x": 'q"t'}).to_xml() == '<a x="q&quot;t"/>'

    def test_empty_element_self_closes(self):
        assert element("a").to_xml() == "<a/>"

    def test_roundtrip_through_parser(self):
        e = element("a", element("b", "1 & 2"), element("c"))
        reparsed = parse(e.to_xml()).root
        assert e.structurally_equal(reparsed)


class TestStructuralEquality:
    def test_whitespace_insensitive_by_default(self):
        a = parse("<a>\n  <b>x</b>\n</a>").root
        b = parse("<a><b>x</b></a>").root
        assert a.structurally_equal(b)

    def test_text_difference_detected(self):
        a = parse("<a><b>x</b></a>").root
        b = parse("<a><b>y</b></a>").root
        assert not a.structurally_equal(b)

    def test_attribute_difference_detected(self):
        a = parse('<a x="1"/>').root
        b = parse('<a x="2"/>').root
        assert not a.structurally_equal(b)

    def test_child_order_matters(self):
        a = parse("<a><b/><c/></a>").root
        b = parse("<a><c/><b/></a>").root
        assert not a.structurally_equal(b)

    def test_strict_whitespace_mode(self):
        a = parse("<a> <b/> </a>").root
        b = parse("<a><b/></a>").root
        assert not a.structurally_equal(b, ignore_whitespace=False)


class TestDocument:
    def test_slice_without_span_reserializes(self):
        doc = Document(element("a", element("b")))
        assert doc.slice(doc.root.find("b")) == "<b/>"

    def test_to_xml_delegates_to_root(self):
        doc = Document(element("a"))
        assert doc.to_xml() == "<a/>"
