"""Unit tests for the span-preserving XML parser."""

import pytest

from repro.xmlkit import Element, XMLSyntaxError, parse, parse_fragment, parse_span


class TestBasicParsing:
    def test_single_element(self):
        doc = parse("<a/>")
        assert doc.root.tag == "a"
        assert doc.root.children == []

    def test_element_with_text(self):
        doc = parse("<a>hello</a>")
        assert doc.root.text() == "hello"

    def test_nested_elements(self):
        doc = parse("<a><b><c/></b></a>")
        assert doc.root.find("b").find("c") is not None

    def test_attributes(self):
        doc = parse('<a x="1" y="two"/>')
        assert doc.root.attributes == {"x": "1", "y": "two"}

    def test_single_quoted_attribute(self):
        doc = parse("<a x='1'/>")
        assert doc.root.attributes["x"] == "1"

    def test_attribute_entity_unescaped(self):
        doc = parse('<a x="a &amp; b"/>')
        assert doc.root.attributes["x"] == "a & b"

    def test_text_entities_unescaped(self):
        doc = parse("<a>x &lt; y &amp; z</a>")
        assert doc.root.text() == "x < y & z"

    def test_mixed_content_order(self):
        doc = parse("<a>one<b/>two</a>")
        kinds = [type(c).__name__ for c in doc.root.children]
        assert kinds == ["str", "Element", "str"]

    def test_whitespace_text_preserved(self):
        doc = parse("<a>\n  <b/>\n</a>")
        assert doc.root.children[0] == "\n  "

    def test_repeated_siblings(self):
        doc = parse("<a><b/><b/><b/></a>")
        assert len(doc.root.find_all("b")) == 3


class TestProlog:
    def test_xml_declaration_skipped(self):
        doc = parse('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.root.tag == "a"

    def test_leading_comment_skipped(self):
        doc = parse("<!-- hello --><a/>")
        assert doc.root.tag == "a"

    def test_doctype_skipped(self):
        doc = parse("<!DOCTYPE a><a/>")
        assert doc.root.tag == "a"

    def test_doctype_with_internal_subset(self):
        doc = parse("<!DOCTYPE a [ <!ELEMENT a EMPTY> ]><a/>")
        assert doc.root.tag == "a"

    def test_trailing_whitespace_and_comment_ok(self):
        doc = parse("<a/>  <!-- bye -->\n")
        assert doc.root.tag == "a"


class TestContentConstructs:
    def test_inner_comment_ignored(self):
        doc = parse("<a><!-- note --><b/></a>")
        assert [c.tag for c in doc.root.child_elements()] == ["b"]

    def test_cdata_becomes_text(self):
        doc = parse("<a><![CDATA[x < y & z]]></a>")
        assert doc.root.text() == "x < y & z"

    def test_processing_instruction_in_content(self):
        doc = parse("<a><?pi data?><b/></a>")
        assert doc.root.find("b") is not None


class TestSourceSpans:
    def test_root_span_covers_document(self):
        text = "<a><b>x</b></a>"
        doc = parse(text)
        assert doc.slice(doc.root) == text

    def test_child_span_is_verbatim(self):
        text = '<a>\n  <b attr="v">x &amp; y</b>\n</a>'
        doc = parse(text)
        assert doc.slice(doc.root.find("b")) == '<b attr="v">x &amp; y</b>'

    def test_self_closing_span(self):
        text = "<a><b/><c/></a>"
        doc = parse(text)
        assert doc.slice(doc.root.find("c")) == "<c/>"

    def test_parse_span_reparses_fragment(self):
        text = "<a><b><c>1</c></b></a>"
        doc = parse(text)
        b = doc.root.find("b")
        fragment = parse_span(text, b.source_span)
        assert fragment.tag == "b"
        assert fragment.find("c").text() == "1"

    def test_repeated_sibling_spans_distinct(self):
        text = "<a><b>1</b><b>2</b></a>"
        doc = parse(text)
        first, second = doc.root.find_all("b")
        assert doc.slice(first) == "<b>1</b>"
        assert doc.slice(second) == "<b>2</b>"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=1/>",
            '<a x="1/>',
            '<a x="1" x="2"/>',
            "<a/><b/>",
            "<a>&bogus;</a>",
            "<a><!-- unterminated </a>",
            "<a><![CDATA[ unterminated </a>",
            '<a "v"/>',
            "< a/>",
            '<a x="<"/>',
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse(bad)

    def test_error_carries_line_and_column(self):
        try:
            parse("<a>\n<b>\n</a>")
        except XMLSyntaxError as exc:
            assert exc.line == 3
            assert "line 3" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")

    def test_missing_whitespace_between_attributes(self):
        with pytest.raises(XMLSyntaxError):
            parse('<a x="1"y="2"/>')


class TestParseFragment:
    def test_returns_element(self):
        el = parse_fragment("<theme><themekt>CF</themekt></theme>")
        assert isinstance(el, Element)
        assert el.find("themekt").text() == "CF"


class TestErrorPickling:
    def test_syntax_error_survives_pickle(self):
        # Regression: an unpicklable parse error raised inside a bulk
        # loader worker used to kill the whole process pool
        # (BrokenProcessPool) instead of failing the one batch.
        import pickle

        with pytest.raises(XMLSyntaxError) as info:
            parse("<unclosed>")
        exc = info.value
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, XMLSyntaxError)
        assert str(clone) == str(exc)
        assert (clone.line, clone.column, clone.offset) == (
            exc.line, exc.column, exc.offset,
        )
