"""Property-based tests: serialize/parse round-trips and span fidelity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit import Element, canonical, element, parse, parse_fragment, pretty_print

TAGS = st.sampled_from(["a", "bb", "theme", "attr", "x_1", "data-set", "n.v"])

TEXT = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_characters="\r",  # parser normalizes nothing; \r\n vs \n is out of scope
        exclude_categories=("Cs", "Cc"),
    ),
    min_size=0,
    max_size=20,
)

ATTR_NAMES = st.sampled_from(["x", "y", "id", "ref"])


def elements(depth: int = 3):
    if depth == 0:
        return st.builds(lambda t, txt: element(t, txt) if txt else element(t), TAGS, TEXT)
    return st.builds(
        _build,
        TAGS,
        st.dictionaries(ATTR_NAMES, TEXT, max_size=2),
        st.lists(st.deferred(lambda: elements(depth - 1)) | TEXT, max_size=4),
    )


def _build(tag, attributes, children):
    e = Element(tag, attributes=attributes)
    for child in children:
        if isinstance(child, str):
            if not child:
                continue
            # Adjacent text children coalesce on reparse; generate the
            # already-coalesced form.
            if e.children and isinstance(e.children[-1], str):
                e.children[-1] += child
            else:
                e.append(child)
        else:
            e.append(child)
    return e


@settings(max_examples=150, deadline=None)
@given(elements())
def test_serialize_parse_roundtrip(tree):
    reparsed = parse(tree.to_xml()).root
    assert tree.structurally_equal(reparsed, ignore_whitespace=False)


@settings(max_examples=100, deadline=None)
@given(elements())
def test_pretty_print_preserves_structure(tree):
    reparsed = parse(pretty_print(tree)).root
    assert tree.structurally_equal(reparsed)


@settings(max_examples=100, deadline=None)
@given(elements())
def test_canonical_stable_under_reparse(tree):
    once = canonical(parse(tree.to_xml()))
    twice = canonical(parse(parse(tree.to_xml()).root.to_xml()))
    assert once == twice


@settings(max_examples=100, deadline=None)
@given(elements())
def test_every_span_slices_to_its_subtree(tree):
    text = tree.to_xml()
    doc = parse(text)
    for node in doc.root.iter():
        fragment = parse_fragment(doc.slice(node))
        assert node.structurally_equal(fragment, ignore_whitespace=False)
