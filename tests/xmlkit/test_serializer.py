"""Unit tests for pretty printing and canonicalization."""

from repro.xmlkit import canonical, element, parse, pretty_print


class TestPrettyPrint:
    def test_leaf_inline(self):
        assert pretty_print(element("a", "text")) == "<a>text</a>\n"

    def test_empty_self_closes(self):
        assert pretty_print(element("a")) == "<a/>\n"

    def test_nested_indentation(self):
        out = pretty_print(element("a", element("b", "x")))
        assert out == "<a>\n    <b>x</b>\n</a>\n"

    def test_custom_indent(self):
        out = pretty_print(element("a", element("b")), indent="  ")
        assert out == "<a>\n  <b/>\n</a>\n"

    def test_existing_whitespace_dropped(self):
        doc = parse("<a>\n   <b>x</b>\n</a>")
        assert pretty_print(doc) == "<a>\n    <b>x</b>\n</a>\n"

    def test_pretty_output_reparses_equal(self):
        original = parse("<a><b>x</b><c><d>y</d></c></a>")
        reparsed = parse(pretty_print(original))
        assert original.root.structurally_equal(reparsed.root)

    def test_escaping_applied(self):
        out = pretty_print(element("a", "x < y"))
        assert "&lt;" in out


class TestCanonical:
    def test_attribute_order_normalized(self):
        a = parse('<a x="1" y="2"/>')
        b = parse('<a y="2" x="1"/>')
        assert canonical(a) == canonical(b)

    def test_whitespace_normalized(self):
        a = parse("<a>\n  <b> x </b>\n</a>")
        b = parse("<a><b>x</b></a>")
        assert canonical(a) == canonical(b)

    def test_value_difference_distinguishes(self):
        assert canonical(parse("<a>1</a>")) != canonical(parse("<a>2</a>"))

    def test_structure_difference_distinguishes(self):
        assert canonical(parse("<a><b/></a>")) != canonical(parse("<a><c/></a>"))

    def test_empty_element_forms_equal(self):
        assert canonical(parse("<a><b/></a>")) == canonical(parse("<a><b></b></a>"))

    def test_accepts_element_or_document(self):
        doc = parse("<a/>")
        assert canonical(doc) == canonical(doc.root)
