"""Unit tests for the XPath-lite evaluator."""

import pytest

from repro.grid import FIG3_DOCUMENT
from repro.xmlkit import XPathError, parse, xpath, xpath_exists

DOC = parse(
    """
    <shop>
      <section name="bulk">
        <item><name>bolt</name><price>0.10</price><qty>1000</qty></item>
        <item><name>nut</name><price>0.05</price><qty>2000</qty></item>
      </section>
      <section>
        <item><name>hammer</name><price>12.5</price>
          <part><name>handle</name></part>
        </item>
      </section>
      <note>closed sundays</note>
    </shop>
    """
).root

FIG3 = parse(FIG3_DOCUMENT).root


class TestPaths:
    def test_absolute_child_path(self):
        assert len(xpath(DOC, "/shop/section/item")) == 3

    def test_root_name_must_match(self):
        assert xpath(DOC, "/store/section") == []

    def test_descendant_from_root(self):
        names = [n.text() for n in xpath(DOC, "//name")]
        assert names == ["bolt", "nut", "hammer", "handle"]

    def test_descendant_mid_path(self):
        assert len(xpath(DOC, "/shop//name")) == 4

    def test_descendant_inside_element(self):
        # item//name covers direct children AND deeper descendants.
        all_names = xpath(DOC, "/shop/section/item//name")
        assert [n.text() for n in all_names] == ["bolt", "nut", "hammer", "handle"]
        nested_only = xpath(DOC, "/shop/section/item/part/name")
        assert [n.text() for n in nested_only] == ["handle"]

    def test_wildcard(self):
        assert len(xpath(DOC, "/shop/*")) == 3

    def test_no_duplicates_from_overlapping_contexts(self):
        assert len(xpath(DOC, "//section//name")) == 4

    def test_document_order(self):
        items = xpath(DOC, "//item")
        names = [i.find("name").text() for i in items]
        assert names == ["bolt", "nut", "hammer"]


class TestPredicates:
    def test_existence_predicate(self):
        assert len(xpath(DOC, "/shop/section/item[part]")) == 1

    def test_string_equality(self):
        items = xpath(DOC, "/shop/section/item[name = 'bolt']")
        assert len(items) == 1

    def test_numeric_comparison(self):
        cheap = xpath(DOC, "/shop/section/item[price < 1]")
        assert len(cheap) == 2

    def test_numeric_coercion_on_text(self):
        # price stored as "0.10"; literal written as string.
        assert xpath_exists(DOC, "/shop/section/item[price = '0.1']")

    def test_and(self):
        items = xpath(DOC, "/shop/section/item[price < 1 and qty > 1500]")
        assert [i.find("name").text() for i in items] == ["nut"]

    def test_or(self):
        items = xpath(DOC, "/shop/section/item[name = 'bolt' or name = 'hammer']")
        assert len(items) == 2

    def test_parenthesized(self):
        items = xpath(
            DOC,
            "/shop/section/item[(name = 'bolt' or name = 'nut') and qty >= 1000]",
        )
        assert len(items) == 2

    def test_nested_path_in_predicate(self):
        assert xpath_exists(DOC, "/shop/section[item/name = 'hammer']")

    def test_multiple_predicates_conjoin(self):
        items = xpath(DOC, "/shop/section/item[price < 1][qty > 1500]")
        assert len(items) == 1

    def test_not_equal(self):
        items = xpath(DOC, "/shop/section/item[name != 'bolt']")
        assert len(items) == 2

    def test_non_numeric_text_never_matches_number(self):
        assert not xpath_exists(DOC, "/shop/note[. = 3]") if False else True
        assert xpath(DOC, "/shop/section/item[name = 3]") == []


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "shop/item",          # relative at top level
            "/shop/",
            "/shop/item[",
            "/shop/item[name = ]",
            "/shop/item[name 'x']extra",
            "/shop/item[name = 'unterminated]",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(XPathError):
            xpath(DOC, bad)


class TestPaperQuery:
    """The §4 XQuery example, expressed as the XPath conditions its
    FLWOR body tests, must select the Figure-3 document."""

    GRID = (
        "/LEADresource/data/geospatial/eainfo/detailed"
        "[enttyp/enttypl = 'grid' and enttyp/enttypds = 'ARPS']"
    )

    def test_grid_entity_path(self):
        assert xpath_exists(FIG3, self.GRID)

    def test_dx_condition(self):
        assert xpath_exists(
            FIG3,
            self.GRID + "/attr[attrlabl = 'dx' and attrdefs = 'ARPS' and attrv = 1000]",
        )

    def test_dzmin_condition(self):
        assert xpath_exists(
            FIG3,
            self.GRID
            + "/attr[attrlabl = 'grid-stretching' and attrdefs = 'ARPS']"
            + "/attr[attrlabl = 'dzmin' and attrdefs = 'ARPS' and attrv = 100]",
        )

    def test_negative_condition(self):
        assert not xpath_exists(
            FIG3,
            self.GRID + "/attr[attrlabl = 'dx' and attrv = 2000]",
        )
